//! The router itself: one protocol endpoint in front of N `hfzd` shards.
//!
//! [`RouterState`] owns the [`Placement`] table, the shard links, and an archive
//! registry (`name → path + field keys + which shards hold it`). Requests dispatch
//! as:
//!
//! * `GET` / `VERIFY` — proxied to the owning shard (verify goes to field 0's owner;
//!   every owning shard holds the whole file, so any of them can verify it);
//! * `GETBATCH` — split by owner, fanned out concurrently (one thread per shard),
//!   and merged back **in request order**;
//! * `LOAD` — the router peeks the file's manifest for field names, computes the
//!   owner set, and loads the archive onto every owning shard;
//! * `LIST` — the union of the live shards' documents, deduplicated by archive name;
//! * `STATS` / `METRICS` — fleet aggregation: summed counters and the shards'
//!   Prometheus families merged under a `shard` label.
//!
//! **Failure handling.** A disconnect that survives the [`Connection`](huffdec_serve::Connection)'s
//! own redial means the shard is gone: the router marks it down, re-resolves its keys
//! against the surviving shards (rendezvous hashing moves *only* the dead shard's
//! keys), re-`LOAD`s the affected archives onto their new owners, and retries the
//! in-flight request once. Clients see one slow request, not an error. A `BUSY`
//! reply is different: the shard is alive but shedding load, so the router backs off
//! briefly and retries the *same* shard once — never marking it down — and
//! propagates the typed `BUSY` to the client only if the shard is still saturated.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use huffdec_codec::ArchiveSummary;
use huffdec_container::JsonWriter;
use huffdec_metrics::{merge_expositions, parse_prometheus, Sample};
use huffdec_serve::client::ClientError;
use huffdec_serve::net::{connect, Conn, ListenAddr, Listener};
use huffdec_serve::protocol::{
    read_frame, write_frame, BatchGetItem, GetKind, Request, Response, MAX_REQUEST_BYTES,
    MAX_RESPONSE_BYTES,
};
use huffdec_serve::server::Health;

use crate::fleet::ShardLink;
use crate::placement::{field_key, Placement};

/// Back-off before retrying a shard that answered `BUSY`: long enough for several
/// scheduling ticks to drain the shard's decode queue, short enough that the client
/// just sees one slower request.
const BUSY_BACKOFF: std::time::Duration = std::time::Duration::from_millis(15);

/// One archive the router has placed: where the file lives, how its fields are
/// keyed, and which shards currently hold it.
#[derive(Debug, Clone)]
struct ArchiveEntry {
    path: String,
    /// Per-field manifest names (`None` for manifest-less files, keyed `#<index>`).
    fields: Vec<Option<String>>,
    /// Shards the archive is currently loaded on (owners, kept current on re-route).
    loaded_on: BTreeSet<usize>,
}

/// Shared state of a running router.
pub struct RouterState {
    links: Vec<ShardLink>,
    placement: RwLock<Placement>,
    archives: RwLock<BTreeMap<String, ArchiveEntry>>,
    shutdown: AtomicBool,
    addr: Mutex<Option<ListenAddr>>,
    metrics_addr: Mutex<Option<ListenAddr>>,
    /// Protocol requests the router handled (its own counter — shard counters only
    /// see the traffic proxied to them).
    requests: AtomicU64,
    /// `(archive, shard)` re-`LOAD`s executed because an owner went down.
    reroutes: AtomicU64,
    /// Requests retried on a surviving shard after a disconnect.
    retries: AtomicU64,
    /// Times a shard was marked down.
    down_events: AtomicU64,
    /// The down-event count the previous `/healthz` check saw: a delta means a shard
    /// died (and its keys were re-routed) since then, which reads as one degraded
    /// window before the fleet reports healthy again on the survivors.
    health_seen: Mutex<u64>,
}

impl RouterState {
    /// A router over the given shard links (their ids must be `0..links.len()`, the
    /// placement slots).
    pub fn new(links: Vec<ShardLink>) -> RouterState {
        let placement = Placement::new(links.len());
        RouterState {
            links,
            placement: RwLock::new(placement),
            archives: RwLock::new(BTreeMap::new()),
            shutdown: AtomicBool::new(false),
            addr: Mutex::new(None),
            metrics_addr: Mutex::new(None),
            requests: AtomicU64::new(0),
            reroutes: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            down_events: AtomicU64::new(0),
            health_seen: Mutex::new(0),
        }
    }

    /// The shard links, indexed by placement slot.
    pub fn links(&self) -> &[ShardLink] {
        &self.links
    }

    /// Number of fields of an archive the router has placed, when it knows it.
    pub fn archive_field_count(&self, name: &str) -> Option<usize> {
        self.archives
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .map(|entry| entry.fields.len())
    }

    /// Number of shards currently serving.
    pub fn live_count(&self) -> usize {
        self.read_placement().live_count()
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and wakes the accept loops (protocol and, when bound, the
    /// HTTP sidecar) with throwaway connections.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let addr = self.lock(&self.addr).clone();
        if let Some(addr) = addr {
            let _ = connect(&addr);
        }
        let metrics_addr = self.lock(&self.metrics_addr).clone();
        if let Some(addr) = metrics_addr {
            let _ = connect(&addr);
        }
    }

    /// Records the resolved protocol address (so shutdown can poke the accept loop).
    pub(crate) fn set_addr(&self, addr: ListenAddr) {
        *self.lock(&self.addr) = Some(addr);
    }

    fn lock<'a, T>(&self, mutex: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        mutex.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn read_placement(&self) -> Placement {
        self.placement
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Fleet health, windowed on down events: the first check after a shard death
    /// reports degraded (the keys have already been re-routed by then); the next
    /// check reads healthy again, now on the surviving shards. No live shard at all
    /// is unhealthy — there is nowhere left to route.
    pub fn health(&self) -> Health {
        if self.is_shutting_down() {
            return Health::Unhealthy("shutting down".to_string());
        }
        let placement = self.read_placement();
        if placement.live_count() == 0 {
            return Health::Unhealthy("no live shards".to_string());
        }
        let events = self.down_events.load(Ordering::SeqCst);
        let prev = std::mem::replace(&mut *self.lock(&self.health_seen), events);
        if events > prev {
            return Health::Degraded(format!(
                "{} shard(s) marked down in the last window; archives re-routed, {}/{} shards serving",
                events - prev,
                placement.live_count(),
                placement.shard_count()
            ));
        }
        Health::Healthy
    }

    /// Handles one protocol request against the fleet.
    pub fn handle(&self, request: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match request {
            Request::List => self.list(),
            Request::Get { archive, field, .. } => self.proxy_field(archive, *field, request),
            Request::GetBatch {
                archive,
                kind,
                fields,
            } => self.get_batch(archive, *kind, fields),
            Request::Verify { archive } => self.proxy_field(archive, 0, request),
            Request::Load { name, path } => self.load_archive(name, path),
            Request::Stats => Response::Stats(self.stats_json()),
            Request::Metrics => Response::Metrics(self.metrics_text()),
            Request::Shutdown => {
                self.request_shutdown();
                Response::ShuttingDown
            }
        }
    }

    /// The live shard owning `(archive, field_index)`.
    fn owner_of(&self, archive: &str, field: u32) -> Result<usize, String> {
        let archives = self.archives.read().unwrap_or_else(|p| p.into_inner());
        let entry = archives
            .get(archive)
            .ok_or_else(|| format!("archive '{}' is not loaded on the router", archive))?;
        let index = field as usize;
        if index >= entry.fields.len() {
            return Err(format!(
                "archive '{}' has {} fields; field {} does not exist",
                archive,
                entry.fields.len(),
                field
            ));
        }
        let key = field_key(entry.fields[index].as_deref(), index);
        self.read_placement()
            .owner(archive, &key)
            .ok_or_else(|| "no live shards".to_string())
    }

    /// Proxies a single-field request (`GET`, `VERIFY`) to its owner, failing over
    /// once if the owner is dead. A `BUSY` shard gets one backed-off retry (it is
    /// alive, just shedding load — its queue drains within a scheduling tick), and
    /// only a second `BUSY` propagates to the client. Neither touches the down flag
    /// or the retry counter: those mean "a shard died", which a full queue does not.
    fn proxy_field(&self, archive: &str, field: u32, request: &Request) -> Response {
        let owner = match self.owner_of(archive, field) {
            Ok(owner) => owner,
            Err(message) => return Response::Error(message),
        };
        match self.links[owner].request(request) {
            Ok(response) => response,
            Err(ClientError::Busy) => {
                std::thread::sleep(BUSY_BACKOFF);
                match self.links[owner].request(request) {
                    Ok(response) => response,
                    Err(ClientError::Busy) => Response::Busy,
                    Err(ClientError::Remote(message)) => Response::Error(message),
                    Err(e) => Response::Error(format!("shard {}: {}", owner, e)),
                }
            }
            Err(e) if e.is_disconnect() => {
                self.mark_down(owner);
                self.retries.fetch_add(1, Ordering::Relaxed);
                let retry = match self.owner_of(archive, field) {
                    Ok(owner) => owner,
                    Err(message) => return Response::Error(message),
                };
                match self.links[retry].request(request) {
                    Ok(response) => response,
                    Err(e) => Response::Error(format!(
                        "shard {} failed after re-routing from shard {}: {}",
                        retry, owner, e
                    )),
                }
            }
            Err(ClientError::Remote(message)) => Response::Error(message),
            Err(e) => Response::Error(format!("shard {}: {}", owner, e)),
        }
    }

    /// `GETBATCH`: split the fields by owning shard, fan the sub-batches out
    /// concurrently, merge the items back in request order. Shards that die mid-fan
    /// are marked down and their sub-batches retried once against the new owners.
    fn get_batch(&self, archive: &str, kind: GetKind, fields: &[u32]) -> Response {
        if fields.is_empty() {
            return Response::GetBatch {
                kind,
                items: Vec::new(),
            };
        }
        let mut groups: BTreeMap<usize, Vec<(usize, u32)>> = BTreeMap::new();
        for (pos, &field) in fields.iter().enumerate() {
            match self.owner_of(archive, field) {
                Ok(owner) => groups.entry(owner).or_default().push((pos, field)),
                Err(message) => return Response::Error(message),
            }
        }
        let mut items: Vec<Option<BatchGetItem>> = vec![None; fields.len()];
        let failed = match self.fan_out(archive, kind, groups, &mut items) {
            Ok(failed) => failed,
            Err(response) => return response,
        };
        if !failed.is_empty() {
            // The one retry: re-resolve the failed positions (their owners are down
            // now) and fan out again. A second failure surfaces to the client.
            self.retries.fetch_add(1, Ordering::Relaxed);
            let mut regroups: BTreeMap<usize, Vec<(usize, u32)>> = BTreeMap::new();
            for (pos, field) in failed {
                match self.owner_of(archive, field) {
                    Ok(owner) => regroups.entry(owner).or_default().push((pos, field)),
                    Err(message) => return Response::Error(message),
                }
            }
            match self.fan_out(archive, kind, regroups, &mut items) {
                Ok(failed) if failed.is_empty() => {}
                Ok(_) => {
                    return Response::Error(
                        "a re-routed shard failed too; batch abandoned after one retry".to_string(),
                    )
                }
                Err(response) => return response,
            }
        }
        match items.into_iter().collect::<Option<Vec<_>>>() {
            Some(items) => Response::GetBatch { kind, items },
            None => Response::Error("internal: batch merge left a hole".to_string()),
        }
    }

    /// Runs one fan-out round: every group's sub-batch on its own thread against its
    /// shard. Successful items land in `items` at their request positions; positions
    /// whose shard disconnected come back for the caller to retry. A `BUSY` shard is
    /// retried once in-thread after a short backoff (no down-marking — the shard is
    /// alive); a second `BUSY` propagates typed to the client. Remote errors (the
    /// shard answered: bad field, unknown archive, …) abort the whole batch.
    #[allow(clippy::type_complexity)]
    fn fan_out(
        &self,
        archive: &str,
        kind: GetKind,
        groups: BTreeMap<usize, Vec<(usize, u32)>>,
        items: &mut [Option<BatchGetItem>],
    ) -> Result<Vec<(usize, u32)>, Response> {
        let results: Vec<(usize, Vec<(usize, u32)>, Result<Response, ClientError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .into_iter()
                    .map(|(shard, positions)| {
                        scope.spawn(move || {
                            let sub = Request::GetBatch {
                                archive: archive.to_string(),
                                kind,
                                fields: positions.iter().map(|&(_, f)| f).collect(),
                            };
                            let mut result = self.links[shard].request(&sub);
                            if matches!(result, Err(ClientError::Busy)) {
                                std::thread::sleep(BUSY_BACKOFF);
                                result = self.links[shard].request(&sub);
                            }
                            (shard, positions, result)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fan-out thread panicked"))
                    .collect()
            });
        let mut failed = Vec::new();
        for (shard, positions, result) in results {
            match result {
                Ok(Response::GetBatch { items: got, .. }) if got.len() == positions.len() => {
                    for ((pos, _), item) in positions.into_iter().zip(got) {
                        items[pos] = Some(item);
                    }
                }
                Ok(_) => {
                    return Err(Response::Error(format!(
                        "shard {} sent an unexpected batch response",
                        shard
                    )));
                }
                Err(e) if e.is_disconnect() => {
                    self.mark_down(shard);
                    failed.extend(positions);
                }
                Err(ClientError::Busy) => return Err(Response::Busy),
                Err(ClientError::Remote(message)) => return Err(Response::Error(message)),
                Err(e) => return Err(Response::Error(format!("shard {}: {}", shard, e))),
            }
        }
        Ok(failed)
    }

    /// `LOAD`: peek the file's manifest locally for field names, compute the owner
    /// set, load the archive onto every owning shard, and record the placement.
    fn load_archive(&self, name: &str, path: &str) -> Response {
        let summary = match ArchiveSummary::open(path) {
            Ok(summary) => summary,
            Err(e) => return Response::Error(format!("cannot load '{}': {}", name, e)),
        };
        let fields: Vec<Option<String>> = match summary.manifest() {
            Some(manifest) => manifest.names().map(|n| Some(n.to_string())).collect(),
            None => vec![None; summary.infos().len()],
        };
        if fields.is_empty() {
            return Response::Error(format!("cannot load '{}': the file has no fields", name));
        }
        // Owners may die while we load onto them; every death re-resolves the owner
        // set and starts over (idempotent — `loaded` skips shards already done).
        let mut loaded: BTreeSet<usize> = BTreeSet::new();
        let owners = 'place: loop {
            let placement = self.read_placement();
            let owners: BTreeSet<usize> = fields
                .iter()
                .enumerate()
                .filter_map(|(i, f)| placement.owner(name, &field_key(f.as_deref(), i)))
                .collect();
            if owners.is_empty() {
                return Response::Error("no live shards".to_string());
            }
            let load = Request::Load {
                name: name.to_string(),
                path: path.to_string(),
            };
            for &shard in &owners {
                if loaded.contains(&shard) {
                    continue;
                }
                match self.links[shard].request(&load) {
                    Ok(Response::Loaded { .. }) => {
                        loaded.insert(shard);
                    }
                    Ok(Response::Error(message)) | Err(ClientError::Remote(message)) => {
                        return Response::Error(format!("cannot load '{}': {}", name, message));
                    }
                    Ok(_) => {
                        return Response::Error(format!(
                            "shard {} sent an unexpected load response",
                            shard
                        ));
                    }
                    Err(e) if e.is_disconnect() => {
                        self.mark_down(shard);
                        continue 'place;
                    }
                    Err(e) => {
                        return Response::Error(format!("shard {}: {}", shard, e));
                    }
                }
            }
            break owners;
        };
        let entry = ArchiveEntry {
            path: path.to_string(),
            fields: fields.clone(),
            loaded_on: owners,
        };
        self.archives
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .insert(name.to_string(), entry);
        Response::Loaded {
            fields: fields.len() as u32,
        }
    }

    /// Marks a shard down (once) and re-homes every archive whose owner set changed.
    fn mark_down(&self, shard: usize) {
        if !self.links[shard].set_down() {
            return;
        }
        self.down_events.fetch_add(1, Ordering::SeqCst);
        self.placement
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .mark_down(shard);
        self.rebalance();
    }

    /// Re-`LOAD`s archives onto shards that became owners after a death. Survivors
    /// dying *during* the re-home are marked down too and the pass restarts (the
    /// `loaded_on` sets make it idempotent); the loop terminates because each restart
    /// removes one shard.
    fn rebalance(&self) {
        loop {
            let mut failed: Option<usize> = None;
            {
                let placement = self.read_placement();
                let mut archives = self.archives.write().unwrap_or_else(|p| p.into_inner());
                'outer: for (name, entry) in archives.iter_mut() {
                    let owners: BTreeSet<usize> = entry
                        .fields
                        .iter()
                        .enumerate()
                        .filter_map(|(i, f)| placement.owner(name, &field_key(f.as_deref(), i)))
                        .collect();
                    let load = Request::Load {
                        name: name.clone(),
                        path: entry.path.clone(),
                    };
                    for &shard in &owners {
                        if entry.loaded_on.contains(&shard) {
                            continue;
                        }
                        match self.links[shard].request(&load) {
                            Ok(Response::Loaded { .. }) => {
                                entry.loaded_on.insert(shard);
                                self.reroutes.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) if e.is_disconnect() => {
                                failed = Some(shard);
                                break 'outer;
                            }
                            // A shard that *answered* but could not load (file gone
                            // on its host, corrupt read) keeps serving its other
                            // archives; requests routed to it for this one will
                            // surface the shard's error verbatim.
                            Ok(_) | Err(_) => {}
                        }
                    }
                    entry.loaded_on.retain(|&s| !self.links[s].is_down());
                }
            }
            match failed {
                Some(shard) => {
                    if self.links[shard].set_down() {
                        self.down_events.fetch_add(1, Ordering::SeqCst);
                        self.placement
                            .write()
                            .unwrap_or_else(|p| p.into_inner())
                            .mark_down(shard);
                    }
                }
                None => return,
            }
        }
    }

    /// `LIST`: the union of the live shards' documents, deduplicated by archive name
    /// and sorted for a stable fleet view.
    fn list(&self) -> Response {
        let mut merged: BTreeMap<String, String> = BTreeMap::new();
        for link in &self.links {
            if link.is_down() {
                continue;
            }
            match link.request(&Request::List) {
                Ok(Response::List(doc)) => {
                    for object in archive_objects(&doc) {
                        let name = object_name(&object).unwrap_or_default().to_string();
                        merged.entry(name).or_insert(object);
                    }
                }
                Ok(_) => {
                    return Response::Error(format!(
                        "shard {} sent an unexpected list response",
                        link.id()
                    ))
                }
                Err(e) if e.is_disconnect() => self.mark_down(link.id()),
                Err(e) => return Response::Error(format!("shard {}: {}", link.id(), e)),
            }
        }
        let objects: Vec<String> = merged.into_values().collect();
        Response::List(format!("{{\"archives\":[{}]}}", objects.join(",")))
    }

    /// The counters the fleet `STATS` document reports, pulled from one shard's
    /// Prometheus exposition (labelled families sum across their series).
    fn shard_counters(samples: &[Sample]) -> ShardCounters {
        let total = |name: &str| -> f64 {
            samples
                .iter()
                .filter(|s| s.name == name)
                .map(|s| s.value)
                .sum()
        };
        ShardCounters {
            requests: total("hfz_requests_total") as u64,
            gets: total("hfz_gets_total") as u64,
            batch_gets: total("hfz_batch_gets_total") as u64,
            cache_hits: total("hfz_cache_hits_total") as u64,
            cache_misses: total("hfz_cache_misses_total") as u64,
            archives_loaded: total("hfz_archives_loaded") as u64,
            decodes: total("hfz_decode_seconds_count") as u64,
            decode_seconds: total("hfz_decode_seconds_sum"),
        }
    }

    /// Scrapes every live shard's registry; down shards yield `None`.
    fn scrape_shards(&self) -> Vec<Option<String>> {
        self.links
            .iter()
            .map(|link| {
                if link.is_down() {
                    return None;
                }
                match link.request(&Request::Metrics) {
                    Ok(Response::Metrics(text)) => Some(text),
                    Ok(_) => None,
                    Err(e) => {
                        if e.is_disconnect() {
                            self.mark_down(link.id());
                        }
                        None
                    }
                }
            })
            .collect()
    }

    /// The fleet `STATS` document: per-shard rows, fleet sums, and the router's own
    /// counters. Fleet numbers are *sums of the shard rows* by construction, which is
    /// the invariant the fleet tests pin.
    fn stats_json(&self) -> String {
        let scraped = self.scrape_shards();
        let counters: Vec<Option<ShardCounters>> = scraped
            .iter()
            .map(|text| {
                text.as_deref()
                    .and_then(|t| parse_prometheus(t).ok())
                    .map(|samples| Self::shard_counters(&samples))
            })
            .collect();
        let mut fleet = ShardCounters::default();
        for c in counters.iter().flatten() {
            fleet.add(c);
        }
        let archives = self.archives.read().unwrap_or_else(|p| p.into_inner());
        let up = counters.iter().filter(|c| c.is_some()).count();
        let mut w = JsonWriter::with_capacity(1024);
        w.begin_object();
        w.key("role").str("router");
        w.key("shards_total").u64(self.links.len() as u64);
        w.key("shards_up").u64(up as u64);
        w.key("fleet").begin_object();
        fleet.write(&mut w);
        w.end_object();
        w.key("shards").begin_array();
        for (link, counters) in self.links.iter().zip(&counters) {
            w.begin_object();
            w.key("shard").u64(link.id() as u64);
            w.key("addr").str(&link.addr().to_string());
            w.key("up").bool(counters.is_some());
            counters.clone().unwrap_or_default().write(&mut w);
            w.end_object();
        }
        w.end_array();
        w.key("router").begin_object();
        w.key("requests").u64(self.requests.load(Ordering::Relaxed));
        w.key("archives").u64(archives.len() as u64);
        w.key("reroutes").u64(self.reroutes.load(Ordering::Relaxed));
        w.key("retries").u64(self.retries.load(Ordering::Relaxed));
        w.key("down_events")
            .u64(self.down_events.load(Ordering::SeqCst));
        w.end_object();
        w.end_object();
        w.finish()
    }

    /// The fleet `/metrics` document: the router's own series, then every shard's
    /// families merged under a `shard` label (so fleet totals are plain sums and
    /// per-shard series stay addressable).
    pub fn metrics_text(&self) -> String {
        let scraped = self.scrape_shards();
        let labels: Vec<String> = (0..self.links.len()).map(|i| i.to_string()).collect();
        let parts: Vec<(&str, &str)> = scraped
            .iter()
            .enumerate()
            .filter_map(|(i, text)| text.as_deref().map(|t| (labels[i].as_str(), t)))
            .collect();
        let merged = merge_expositions(&parts)
            .unwrap_or_else(|e| format!("# shard expositions could not be merged: {}\n", e));
        let mut out = String::with_capacity(merged.len() + 1024);
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {} {}\n# TYPE {} counter\n{} {}\n",
                name, help, name, name, value
            ));
        };
        out.push_str("# HELP hfzr_shard_up Shard link state (1 = serving, 0 = marked down).\n");
        out.push_str("# TYPE hfzr_shard_up gauge\n");
        for link in &self.links {
            out.push_str(&format!(
                "hfzr_shard_up{{shard=\"{}\"}} {}\n",
                link.id(),
                if link.is_down() { 0 } else { 1 }
            ));
        }
        counter(
            &mut out,
            "hfzr_requests_total",
            "Protocol requests handled by the router.",
            self.requests.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "hfzr_reroutes_total",
            "Archive re-loads executed because an owning shard went down.",
            self.reroutes.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "hfzr_retries_total",
            "Requests retried on a surviving shard after a disconnect.",
            self.retries.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "hfzr_shard_down_events_total",
            "Times a shard was marked down.",
            self.down_events.load(Ordering::SeqCst),
        );
        out.push_str(&merged);
        out
    }
}

impl std::fmt::Debug for RouterState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterState")
            .field("links", &self.links)
            .field("shutdown", &self.is_shutting_down())
            .finish_non_exhaustive()
    }
}

impl huffdec_serve::http::HttpEndpoints for RouterState {
    fn metrics_text(&self) -> String {
        RouterState::metrics_text(self)
    }

    fn health(&self) -> Health {
        RouterState::health(self)
    }

    fn is_shutting_down(&self) -> bool {
        RouterState::is_shutting_down(self)
    }

    fn sidecar_bound(&self, addr: ListenAddr) {
        *self.lock(&self.metrics_addr) = Some(addr);
    }
}

/// The counters one shard contributes to the fleet `STATS` document.
#[derive(Debug, Clone, Default)]
struct ShardCounters {
    requests: u64,
    gets: u64,
    batch_gets: u64,
    cache_hits: u64,
    cache_misses: u64,
    archives_loaded: u64,
    decodes: u64,
    decode_seconds: f64,
}

impl ShardCounters {
    fn add(&mut self, other: &ShardCounters) {
        self.requests += other.requests;
        self.gets += other.gets;
        self.batch_gets += other.batch_gets;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.archives_loaded += other.archives_loaded;
        self.decodes += other.decodes;
        self.decode_seconds += other.decode_seconds;
    }

    fn write(&self, w: &mut JsonWriter) {
        w.key("requests").u64(self.requests);
        w.key("gets").u64(self.gets);
        w.key("batch_gets").u64(self.batch_gets);
        w.key("cache_hits").u64(self.cache_hits);
        w.key("cache_misses").u64(self.cache_misses);
        w.key("archives_loaded").u64(self.archives_loaded);
        w.key("decodes").u64(self.decodes);
        w.key("decode_seconds").f64_sci(self.decode_seconds);
    }
}

/// Splits a daemon `LIST` document into its per-archive JSON objects (the elements
/// of the top-level `"archives"` array), string- and escape-aware.
fn archive_objects(doc: &str) -> Vec<String> {
    let marker = "\"archives\":[";
    let Some(start) = doc.find(marker) else {
        return Vec::new();
    };
    let bytes = doc.as_bytes();
    let mut objects = Vec::new();
    let mut depth = 0usize;
    let mut object_start = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for i in start + marker.len()..bytes.len() {
        let b = bytes[i];
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => {
                if depth == 0 {
                    object_start = i;
                }
                depth += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    objects.push(doc[object_start..=i].to_string());
                }
            }
            b']' if depth == 0 => break,
            _ => {}
        }
    }
    objects
}

/// The (JSON-escaped) value of the first `"name"` key in an archive object — the
/// daemon writes it first, and the escaped form is consistent across shards, which is
/// all deduplication and sorting need.
fn object_name(object: &str) -> Option<&str> {
    let rest = object.split("\"name\":\"").nth(1)?;
    let bytes = rest.as_bytes();
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
        } else if b == b'\\' {
            escaped = true;
        } else if b == b'"' {
            return Some(&rest[..i]);
        }
    }
    None
}

/// A bound router: the protocol listener plus the shared state.
#[derive(Debug)]
pub struct RouterServer {
    listener: Listener,
    state: Arc<RouterState>,
}

impl RouterServer {
    /// Binds the router's protocol listener on `addr`.
    pub fn bind(addr: &ListenAddr, state: Arc<RouterState>) -> std::io::Result<RouterServer> {
        let listener = Listener::bind(addr)?;
        state.set_addr(listener.local_addr()?);
        Ok(RouterServer { listener, state })
    }

    /// The bound address, with ephemeral TCP ports resolved.
    pub fn local_addr(&self) -> ListenAddr {
        self.listener
            .local_addr()
            .expect("listener had an address at bind time")
    }

    /// The shared router state.
    pub fn state(&self) -> Arc<RouterState> {
        Arc::clone(&self.state)
    }

    /// Accepts and serves until shutdown, one thread per connection; on the way out,
    /// spawned shards are asked to exit too (attached shards are left running).
    pub fn run(self) -> std::io::Result<()> {
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            let conn = self.listener.accept()?;
            if self.state.is_shutting_down() {
                break;
            }
            workers.retain(|worker| !worker.is_finished());
            let state = Arc::clone(&self.state);
            workers.push(std::thread::spawn(move || serve_connection(state, conn)));
        }
        for worker in workers {
            let _ = worker.join();
        }
        for link in self.state.links() {
            link.shutdown_spawned();
        }
        Ok(())
    }
}

/// Runs one connection's request loop: frames in, frames out, until EOF or shutdown.
fn serve_connection(state: Arc<RouterState>, mut conn: Conn) {
    use std::io::Write as _;
    loop {
        let body = match read_frame(&mut conn, MAX_REQUEST_BYTES) {
            Ok(Some(body)) => body,
            Ok(None) => return, // clean EOF
            Err(_) => return,   // protocol violation: drop the connection
        };
        // Once SHUTDOWN has been accepted, concurrent connections are dropped rather
        // than served — the same exit contract as the daemon.
        if state.is_shutting_down() {
            return;
        }
        let response = match Request::decode(&body) {
            Ok(request) => state.handle(&request),
            Err(e) => Response::Error(format!("bad request: {}", e)),
        };
        let shutting_down = matches!(response, Response::ShuttingDown);
        // Mirror the daemon: a response that cannot fit a frame (a merged batch past
        // the 1 GiB ceiling) degrades to a typed error instead of desyncing.
        let mut body = response.encode();
        if body.len() as u64 > MAX_RESPONSE_BYTES as u64 {
            body = Response::Error(format!(
                "response of {} bytes exceeds the {} frame limit; request a range",
                body.len(),
                MAX_RESPONSE_BYTES
            ))
            .encode();
        }
        if write_frame(&mut conn, &body, MAX_RESPONSE_BYTES).is_err() {
            return;
        }
        if shutting_down {
            let _ = conn.flush();
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_documents_split_into_archive_objects() {
        let doc = r#"{"archives":[{"name":"a","path":"/x","fields":[{"name":"f0","bytes":3}]},{"name":"b {tricky}","path":"/y","fields":[]}]}"#;
        let objects = archive_objects(doc);
        assert_eq!(objects.len(), 2);
        assert_eq!(object_name(&objects[0]), Some("a"));
        assert_eq!(object_name(&objects[1]), Some("b {tricky}"));
        assert!(objects[0].contains("\"fields\""));
        // Escaped quotes inside names do not end the scan early.
        let escaped = r#"{"archives":[{"name":"q\"uote","path":"/z"}]}"#;
        let objects = archive_objects(escaped);
        assert_eq!(objects.len(), 1);
        assert_eq!(object_name(&objects[0]), Some(r#"q\"uote"#));
        // Documents without the array, or empty, yield nothing.
        assert!(archive_objects("{}").is_empty());
        assert!(archive_objects(r#"{"archives":[]}"#).is_empty());
    }
}
