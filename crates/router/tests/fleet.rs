//! End-to-end fleet test: the acceptance scenario of the router.
//!
//! Three in-process `hfzd` shards behind a `RouterServer`. The client speaks to the
//! router exactly as it would to a single daemon and must not be able to tell the
//! difference: every `GET` and `GETBATCH` byte-identical to a direct decode, fleet
//! `STATS` totals equal to the sum of the per-shard rows, and — the point of the
//! subsystem — killing a shard mid-run re-homes its fields onto the survivors with
//! at most one transparent retry for the in-flight request.

use std::sync::Arc;

use datasets::{dataset_by_name, generate, Field};
use gpu_sim::{Gpu, GpuConfig};
use huffdec_container::ArchiveWriter;
use huffdec_core::DecoderKind;
use huffdec_router::{RouterServer, RouterState, ShardLink};
use huffdec_serve::client::Connection;
use huffdec_serve::net::ListenAddr;
use huffdec_serve::protocol::GetKind;
use huffdec_serve::server::{Server, ServerConfig};
use huffdec_serve::BackendKind;
use sz::{compress, decompress, Compressed, SzConfig};

const ELEMENTS: usize = 8_000;
const FIELDS: usize = 6;

/// A six-field snapshot archive plus the reference decode of every field.
struct TestSnapshot {
    path: std::path::PathBuf,
    field_names: Vec<String>,
    reference: Vec<Vec<f32>>,
}

fn build_snapshot(dir: &std::path::Path, gpu: &Gpu) -> TestSnapshot {
    let datasets = ["HACC", "GAMESS", "CESM"];
    let mut compressed: Vec<(String, Compressed)> = Vec::new();
    let mut reference = Vec::new();
    for i in 0..FIELDS {
        let field: Field = generate(
            &dataset_by_name(datasets[i % datasets.len()]).unwrap(),
            ELEMENTS,
            (i + 1) as u64,
        );
        let c = compress(
            &field,
            &SzConfig::paper_default(DecoderKind::OptimizedGapArray),
        );
        reference.push(decompress(gpu, &c).unwrap().data);
        compressed.push((format!("field_{}", i), c));
    }
    let path = dir.join("snapshot.hfz");
    let file = std::fs::File::create(&path).unwrap();
    let mut writer = ArchiveWriter::new(std::io::BufWriter::new(file));
    let fields: Vec<(&str, &Compressed)> =
        compressed.iter().map(|(n, c)| (n.as_str(), c)).collect();
    writer.write_snapshot(&fields).unwrap();
    writer.into_inner().unwrap();
    TestSnapshot {
        path,
        field_names: compressed.into_iter().map(|(n, _)| n).collect(),
        reference,
    }
}

fn f32_bytes(values: &[f32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// One in-process shard on an ephemeral port.
fn start_shard() -> (
    ListenAddr,
    Arc<huffdec_serve::ServerState>,
    std::thread::JoinHandle<()>,
) {
    let config = ServerConfig {
        cache_bytes: 8 << 20,
        gpu: GpuConfig::test_tiny(),
        backend: BackendKind::from_env(),
        host_threads: 2,
        ..ServerConfig::default()
    };
    let addr = ListenAddr::parse("tcp:127.0.0.1:0").unwrap();
    let server = Server::bind(&addr, &config).unwrap();
    let addr = server.local_addr();
    let state = server.state();
    let thread = std::thread::spawn(move || server.run().unwrap());
    (addr, state, thread)
}

/// Pulls `"key":<u64>` out of a JSON document fragment starting at `from`.
fn json_u64(doc: &str, from: usize, key: &str) -> u64 {
    let pat = format!("\"{}\":", key);
    let at = doc[from..].find(&pat).expect(key) + from + pat.len();
    doc[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

/// A bounded random walk with `zero_pct`% flat steps: quantizes to a controllably
/// center-bin-heavy code stream under an absolute bound of 0.5 (step 1.0).
fn walk_field(n: usize, zero_pct: u64, seed: u64) -> Field {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut value = 0.0f32;
    let data: Vec<f32> = (0..n)
        .map(|_| {
            if rng() % 100 >= zero_pct {
                value += (rng() % 401) as f32 - 200.0;
            }
            value
        })
        .collect();
    Field::new("walk".to_string(), datasets::Dims::D1(n), data)
}

#[test]
fn fleet_serves_hybrid_v2_snapshot_fields() {
    let dir = std::env::temp_dir().join("hfzr-fleet-hybrid");
    std::fs::create_dir_all(&dir).unwrap();
    let gpu = Gpu::with_host_threads(GpuConfig::test_tiny(), 2);

    // A mixed v2 snapshot: sparse hybrid fields interleaved with dense ones, enough
    // of them that rendezvous placement spreads the archive across both shards.
    let config = |decoder| SzConfig {
        error_bound: sz::ErrorBound::Absolute(0.5),
        alphabet_size: 1024,
        decoder,
    };
    let mut compressed: Vec<(String, Compressed)> = Vec::new();
    let mut reference: Vec<Vec<f32>> = Vec::new();
    for i in 0..FIELDS {
        let (field, decoder) = if i % 2 == 0 {
            (
                walk_field(ELEMENTS, 95, 60 + i as u64),
                DecoderKind::RleHybrid,
            )
        } else {
            (
                walk_field(ELEMENTS, 10, 60 + i as u64),
                DecoderKind::OptimizedGapArray,
            )
        };
        let c = compress(&field, &config(decoder));
        reference.push(decompress(&gpu, &c).unwrap().data);
        compressed.push((format!("field_{}", i), c));
    }
    let refs: Vec<(&str, &Compressed)> = compressed.iter().map(|(n, c)| (n.as_str(), c)).collect();
    let path = dir.join("hybrid-snap.hfz");
    std::fs::write(&path, huffdec_container::snapshot_to_bytes(&refs).unwrap()).unwrap();

    let shards: Vec<_> = (0..2).map(|_| start_shard()).collect();
    let links: Vec<ShardLink> = shards
        .iter()
        .enumerate()
        .map(|(id, (addr, _, _))| ShardLink::attach(id, addr.clone()))
        .collect();
    let state = Arc::new(RouterState::new(links));
    let router = RouterServer::bind(
        &ListenAddr::parse("tcp:127.0.0.1:0").unwrap(),
        Arc::clone(&state),
    )
    .unwrap();
    let router_addr = router.local_addr();
    let router_thread = std::thread::spawn(move || router.run().unwrap());

    let mut client = Connection::connect(&router_addr).unwrap();
    assert_eq!(
        client.load("hy", path.to_str().unwrap()).unwrap() as usize,
        FIELDS
    );

    // Every field — hybrid and dense alike — is byte-identical through the router.
    for (i, reference) in reference.iter().enumerate() {
        let r = client.get("hy", i as u32, GetKind::Data, None).unwrap();
        assert_eq!(r.bytes, f32_bytes(reference), "field {} via router", i);
    }

    // A shuffled GETBATCH fans the mixed decoders out across the owning shards and
    // merges in request order.
    let batch_fields: Vec<u32> = vec![4, 1, 0, 5, 2, 0, 3];
    let items = client
        .get_batch("hy", GetKind::Data, &batch_fields)
        .unwrap();
    assert_eq!(items.len(), batch_fields.len());
    for (item, &f) in items.iter().zip(&batch_fields) {
        assert_eq!(
            item.bytes,
            f32_bytes(&reference[f as usize]),
            "batch item for field {} via router",
            f
        );
    }

    // The merged LIST carries the v2 format version and the hybrid decoder tag.
    let list = client.list().unwrap();
    assert!(list.contains("\"format_version\":2"), "{}", list);
    assert!(list.contains("\"decoder\":\"rle+huff hybrid\""), "{}", list);

    client.shutdown().unwrap();
    router_thread.join().unwrap();
    drop(state);
    for (addr, _, handle) in shards {
        Connection::connect(&addr).unwrap().shutdown().unwrap();
        handle.join().unwrap();
    }
}

#[test]
fn three_shard_fleet_serves_and_survives_a_kill() {
    let dir = std::env::temp_dir().join("hfzr-fleet-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let gpu = Gpu::with_host_threads(GpuConfig::test_tiny(), 2);
    let snapshot = build_snapshot(&dir, &gpu);

    // Three shards, then the router in front of them.
    let shards: Vec<_> = (0..3).map(|_| start_shard()).collect();
    let links: Vec<ShardLink> = shards
        .iter()
        .enumerate()
        .map(|(id, (addr, _, _))| ShardLink::attach(id, addr.clone()))
        .collect();
    let state = Arc::new(RouterState::new(links));
    let router = RouterServer::bind(
        &ListenAddr::parse("tcp:127.0.0.1:0").unwrap(),
        Arc::clone(&state),
    )
    .unwrap();
    let router_addr = router.local_addr();
    let router_thread = std::thread::spawn(move || router.run().unwrap());

    // One LOAD through the router places the archive across the fleet.
    let mut client = Connection::connect(&router_addr).unwrap();
    let fields = client
        .load("snap", snapshot.path.to_str().unwrap())
        .unwrap();
    assert_eq!(fields as usize, FIELDS);

    // Rendezvous hashing must actually shard: with 6 fields on 3 shards, more than
    // one shard owns something (all-on-one has probability 3·(1/3)^6 ≈ 0.4%, and the
    // placement is deterministic, so this cannot flake).
    let owners: Vec<usize> = (0..3)
        .filter(|&s| {
            let mut c = Connection::connect(&shards[s].0).unwrap();
            c.list().unwrap().contains("\"snap\"")
        })
        .collect();
    assert!(
        owners.len() > 1,
        "placement sent every field to one shard: {:?}",
        owners
    );

    // A reference single daemon holding the same archive: the fleet must be
    // byte-identical to it on every request shape.
    let (single_addr, _, single_thread) = start_shard();
    let mut single = Connection::connect(&single_addr).unwrap();
    single
        .load("snap", snapshot.path.to_str().unwrap())
        .unwrap();

    // GET every field through the router: byte-identical to the single daemon and
    // to the direct decode.
    for (i, reference) in snapshot.reference.iter().enumerate() {
        let via_router = client.get("snap", i as u32, GetKind::Data, None).unwrap();
        let via_single = single.get("snap", i as u32, GetKind::Data, None).unwrap();
        assert_eq!(via_router.bytes, f32_bytes(reference), "field {}", i);
        assert_eq!(via_router.bytes, via_single.bytes, "field {}", i);
        assert_eq!(via_router.elements, via_single.elements);
    }
    // Ranged GET proxies too.
    let ranged = client
        .get("snap", 2, GetKind::Data, Some((100, 64)))
        .unwrap();
    assert_eq!(ranged.bytes, f32_bytes(&snapshot.reference[2][100..164]));

    // GETBATCH fans out across the owning shards and merges in request order —
    // including a deliberately shuffled, repeating field list.
    let batch_fields: Vec<u32> = vec![5, 0, 3, 1, 5, 4, 2];
    let via_router = client
        .get_batch("snap", GetKind::Data, &batch_fields)
        .unwrap();
    let via_single = single
        .get_batch("snap", GetKind::Data, &batch_fields)
        .unwrap();
    assert_eq!(via_router.len(), batch_fields.len());
    for ((item, single_item), &f) in via_router.iter().zip(&via_single).zip(&batch_fields) {
        assert_eq!(
            item.bytes,
            f32_bytes(&snapshot.reference[f as usize]),
            "batch item for field {}",
            f
        );
        assert_eq!(item.bytes, single_item.bytes);
        assert_eq!(item.elements, single_item.elements);
    }

    // LIST through the router names the archive and all six fields once.
    let list = client.list().unwrap();
    assert!(list.contains("\"snap\""));
    for name in &snapshot.field_names {
        assert_eq!(
            list.matches(&format!("\"{}\"", name)).count(),
            1,
            "field {} must appear exactly once in the merged list: {}",
            name,
            list
        );
    }

    // Fleet STATS: the fleet block equals the sum of the per-shard rows.
    let stats = client.stats().unwrap();
    assert!(stats.contains("\"role\":\"router\""));
    assert_eq!(json_u64(&stats, 0, "shards_total"), 3);
    assert_eq!(json_u64(&stats, 0, "shards_up"), 3);
    let fleet_at = stats.find("\"fleet\"").unwrap();
    let shards_at = stats.find("\"shards\":[").unwrap();
    for key in [
        "requests",
        "gets",
        "batch_gets",
        "cache_hits",
        "cache_misses",
    ] {
        let fleet_total = json_u64(&stats, fleet_at, key);
        let mut per_shard_sum = 0;
        let mut at = shards_at;
        for _ in 0..3 {
            at = stats[at..].find(&format!("\"{}\":", key)).unwrap() + at;
            per_shard_sum += json_u64(&stats, at, key);
            at += key.len();
        }
        assert_eq!(
            fleet_total, per_shard_sum,
            "fleet {} must equal the sum of the shard rows: {}",
            key, stats
        );
    }
    // And it agrees with the shards' own STATS documents.
    let mut direct_gets = 0;
    for (addr, _, _) in &shards {
        let mut c = Connection::connect(addr).unwrap();
        direct_gets += json_u64(&c.stats().unwrap(), 0, "gets");
    }
    assert_eq!(json_u64(&stats, fleet_at, "gets"), direct_gets);

    // Fleet METRICS: per-shard series stay addressable under the shard label and the
    // router's own families are present.
    let prom = client.metrics_prom().unwrap();
    assert!(prom.contains("hfzr_shard_up{shard=\"0\"} 1"));
    assert!(prom.contains("shard=\"1\""));
    assert!(prom.contains("hfzr_requests_total"));
    assert_eq!(
        prom.matches("# TYPE hfz_requests_total").count(),
        1,
        "one TYPE line per merged family"
    );

    // A second, single-field archive lives on exactly one shard — killing that shard
    // forces a real re-`LOAD` onto a survivor that never held it (the snapshot's
    // survivors already hold the whole file, so its failover needs no reroute).
    let solo_field: Field = generate(&dataset_by_name("QMCPACK").unwrap(), ELEMENTS, 99);
    let solo_c = compress(
        &solo_field,
        &SzConfig::paper_default(DecoderKind::OptimizedSelfSync),
    );
    let solo_reference = decompress(&gpu, &solo_c).unwrap().data;
    let solo_path = dir.join("solo.hfz");
    let file = std::fs::File::create(&solo_path).unwrap();
    let mut writer = ArchiveWriter::new(std::io::BufWriter::new(file));
    writer.write_compressed(&solo_c).unwrap();
    writer.into_inner().unwrap();
    assert_eq!(client.load("solo", solo_path.to_str().unwrap()).unwrap(), 1);
    let solo = client.get("solo", 0, GetKind::Data, None).unwrap();
    assert_eq!(solo.bytes, f32_bytes(&solo_reference));
    let solo_owners: Vec<usize> = (0..3)
        .filter(|&s| {
            let mut c = Connection::connect(&shards[s].0).unwrap();
            c.list().unwrap().contains("\"solo\"")
        })
        .collect();
    assert_eq!(
        solo_owners.len(),
        1,
        "one field places on exactly one shard"
    );

    // ---- Kill the shard owning `solo` mid-run. ----
    //
    // In-process, `request_shutdown` is the kill switch: the shard stops accepting
    // and drops every connection — including the router's pooled link — at its next
    // frame, which is exactly what the router observes when a remote daemon dies.
    let dead = solo_owners[0];
    shards[dead].1.request_shutdown();
    std::thread::sleep(std::time::Duration::from_millis(50));

    // The in-flight request against the dead shard: marked down, `solo` re-loaded
    // onto a survivor from the router's registry, retried once — the client just
    // sees the answer.
    let solo = client.get("solo", 0, GetKind::Data, None).unwrap();
    assert_eq!(
        solo.bytes,
        f32_bytes(&solo_reference),
        "solo after the kill"
    );

    // Every field — including the dead shard's — still serves through the router,
    // byte-identical, with at most one transparent retry. The first request that
    // touches the dead shard triggers mark-down + re-LOAD onto the survivors.
    for (i, reference) in snapshot.reference.iter().enumerate() {
        let r = client.get("snap", i as u32, GetKind::Data, None).unwrap();
        assert_eq!(r.bytes, f32_bytes(reference), "field {} after the kill", i);
    }
    let via_router = client
        .get_batch("snap", GetKind::Data, &batch_fields)
        .unwrap();
    for (item, &f) in via_router.iter().zip(&batch_fields) {
        assert_eq!(
            item.bytes,
            f32_bytes(&snapshot.reference[f as usize]),
            "batch item for field {} after the kill",
            f
        );
    }

    // The fleet knows: one shard down, down events and reroutes counted, and the
    // router marked the death exactly once.
    let stats = client.stats().unwrap();
    assert_eq!(json_u64(&stats, 0, "shards_up"), 2);
    let router_at = stats.find("\"router\"").unwrap();
    assert_eq!(json_u64(&stats, router_at, "down_events"), 1);
    assert!(json_u64(&stats, router_at, "reroutes") >= 1);
    // Exactly one client-visible retry: the solo GET that found its owner dead.
    // Every later request re-routed *before* being sent.
    assert_eq!(json_u64(&stats, router_at, "retries"), 1);
    let prom = client.metrics_prom().unwrap();
    assert!(prom.contains(&format!("hfzr_shard_up{{shard=\"{}\"}} 0", dead)));
    assert!(prom.contains("hfzr_shard_down_events_total 1"));

    // Health: the death was absorbed — one degraded window, then healthy again.
    match state.health() {
        huffdec_serve::Health::Degraded(_) => {}
        other => panic!(
            "first health check after a kill must be degraded: {:?}",
            other
        ),
    }
    assert!(matches!(state.health(), huffdec_serve::Health::Healthy));

    // Shut the fleet down: the router first, then the surviving shards. The router
    // state must go before the shards do — its pooled links hold their sockets, and
    // a shard's shutdown join waits for every connection to hang up.
    client.shutdown().unwrap();
    router_thread.join().unwrap();
    drop(state);
    single.shutdown().unwrap();
    single_thread.join().unwrap();
    for (id, (addr, _, handle)) in shards.into_iter().enumerate() {
        if id == dead {
            handle.join().unwrap();
            continue;
        }
        Connection::connect(&addr).unwrap().shutdown().unwrap();
        handle.join().unwrap();
    }
}
