//! `hfz` — the archive and serving CLI of the huffdec workspace.
//!
//! Local archive operations work on `HFZ1` files; remote operations talk to a running
//! `hfzd` daemon (`hfz serve` starts one in the foreground):
//!
//! ```text
//! hfz compress   --dataset HACC --elements 200000 --seed 42 --output hacc.hfz
//! hfz compress   --input field.f32 --dims 512,512 --output field.hfz --decoder gap --eb rel:1e-3
//! hfz compress   --snapshot --dataset HACC,GAMESS,CESM --elements 200000 --output snap.hfz
//! hfz decompress hacc.hfz --output hacc.f32
//! hfz decompress snap.hfz --field GAMESS --output gamess.f32
//! hfz decompress snap.hfz --all --output-dir out/
//! hfz inspect    hacc.hfz [--json]
//! hfz verify     hacc.hfz [--deep] [--dataset HACC --elements 200000 --seed 42]
//!
//! hfz serve      --listen tcp:127.0.0.1:4806 --cache-bytes 268435456 --load hacc=hacc.hfz
//! hfz get        --addr tcp:127.0.0.1:4806 --archive hacc [--field 0] [--codes]
//!                [--range START:LEN] --output hacc.f32
//! hfz list       --addr tcp:127.0.0.1:4806
//! hfz stats      --addr tcp:127.0.0.1:4806
//! hfz load       --addr tcp:127.0.0.1:4806 --name gamess --path gamess.hfz
//! hfz verify     --addr tcp:127.0.0.1:4806 --archive hacc
//! hfz shutdown   --addr tcp:127.0.0.1:4806
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::process::ExitCode;

use datasets::{dataset_by_name, generate, Dims, Field};
use gpu_sim::{Gpu, GpuConfig};
use huffdec_container::{read_info, ArchiveWriter, ContainerError, Snapshot};
use huffdec_core::DecoderKind;
use huffdec_serve::client::Client;
use huffdec_serve::daemon::{run as run_daemon, DaemonOptions};
use huffdec_serve::net::ListenAddr;
use huffdec_serve::protocol::GetKind;
use sz::{compress_on, decompress, verify_error_bound, Compressed, ErrorBound, SzConfig};

/// `println!` that exits quietly instead of panicking when stdout has been closed
/// (e.g. the output is piped into `head`).
macro_rules! out {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compress") => cmd_compress(&args[1..]),
        Some("decompress") => cmd_decompress(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("get") => cmd_get(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("list") => cmd_list(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("load") => cmd_load(&args[1..]),
        Some("shutdown") => cmd_shutdown(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            eprint!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand '{}'\n\n{}", other, USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("hfz: {}", message);
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
hfz — HFZ1 archive and serving tool for error-bounded lossy compression

USAGE:
  hfz compress   (--input FILE --dims A[,B[,C[,D]]] | --dataset NAME --elements N [--seed S])
                 --output FILE [--decoder KIND] [--eb MODE:VALUE] [--alphabet N]
  hfz compress   --snapshot --dataset NAME[,NAME...] --elements N [--seed S] --output FILE
                 (one sharded snapshot archive with a manifest; field i uses seed S+i)
  hfz decompress ARCHIVE [--field NAME|INDEX | --all --output-dir DIR] --output FILE
  hfz inspect    ARCHIVE [--json]
  hfz verify     ARCHIVE [--deep] [--digest HEX]
                 [--input FILE --dims ... | --dataset NAME --elements N [--seed S]]
  hfz verify     --addr ADDR --archive NAME       (remote: daemon-side deep verify)

  hfz serve      [--listen ADDR] [--cache-bytes N] [--load NAME=PATH]...
  hfz get        --addr ADDR --archive NAME [--field I] [--codes] [--range START:LEN]
                 --output FILE
  hfz batch      --addr ADDR --archive NAME --fields I[,I...] [--codes]
                 --output-prefix PATH            (writes PATH.<index> per field)
  hfz list       --addr ADDR
  hfz stats      --addr ADDR
  hfz load       --addr ADDR --name NAME --path FILE
  hfz shutdown   --addr ADDR

OPTIONS:
  --decoder KIND   baseline | original-self-sync | self-sync | gap   (default: gap)
  --eb MODE:VALUE  rel:1e-3 or abs:0.05                              (default: rel:1e-3)
  --alphabet N     quantization bins, power of two >= 4              (default: 1024)
  --seed S         synthetic dataset seed                            (default: 42)
  --deep           also decode and check the decoded-stream CRC32 trailer
  --digest HEX     expected decoded-stream CRC32 (overrides the stored trailer)
  ADDR             tcp:HOST:PORT or unix:PATH
";

/// Minimal flag parser: positionals plus `--flag value` pairs (and bare `--flag`
/// switches from `SWITCHES`).
struct Args {
    positionals: Vec<String>,
    flags: Vec<(String, String)>,
}

/// Flags that take no value.
const SWITCHES: &[&str] = &["json", "deep", "codes", "snapshot", "all"];

impl Args {
    fn parse(args: &[String]) -> Result<Args, String> {
        let mut positionals = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if SWITCHES.contains(&name) {
                    flags.push((name.to_string(), "true".to_string()));
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{} expects a value", name))?;
                flags.push((name.to_string(), value.clone()));
            } else {
                positionals.push(arg.clone());
            }
        }
        Ok(Args { positionals, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{}", name))
    }
}

fn parse_decoder(name: &str) -> Result<DecoderKind, String> {
    match name {
        "baseline" | "cusz" => Ok(DecoderKind::CuszBaseline),
        "original-self-sync" | "ori-self-sync" => Ok(DecoderKind::OriginalSelfSync),
        "self-sync" | "optimized-self-sync" => Ok(DecoderKind::OptimizedSelfSync),
        "gap" | "gap-array" => Ok(DecoderKind::OptimizedGapArray),
        other => Err(format!("unknown decoder '{}'", other)),
    }
}

fn parse_error_bound(spec: &str) -> Result<ErrorBound, String> {
    let (mode, value) = spec
        .split_once(':')
        .ok_or_else(|| format!("error bound '{}' is not MODE:VALUE", spec))?;
    let value: f64 = value
        .parse()
        .map_err(|_| format!("bad error-bound value '{}'", value))?;
    if !value.is_finite() || value <= 0.0 {
        return Err(format!(
            "error bound must be positive and finite, got {}",
            value
        ));
    }
    match mode {
        "rel" | "relative" => Ok(ErrorBound::Relative(value)),
        "abs" | "absolute" => Ok(ErrorBound::Absolute(value)),
        other => Err(format!("unknown error-bound mode '{}'", other)),
    }
}

fn parse_dims(spec: &str) -> Result<Dims, String> {
    let extents: Vec<usize> = spec
        .split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad dimension '{}'", p))
        })
        .collect::<Result<_, _>>()?;
    if extents.is_empty() || extents.len() > 4 {
        return Err("expected 1-4 comma-separated dimensions".to_string());
    }
    if extents.contains(&0) {
        return Err("dimensions must be non-zero".to_string());
    }
    Ok(Dims::from_slice(&extents))
}

/// Loads the field named by `--input`/`--dims` or `--dataset`/`--elements`/`--seed`.
fn load_field(args: &Args) -> Result<Field, String> {
    match (args.get("input"), args.get("dataset")) {
        (Some(path), None) => {
            let dims = parse_dims(args.require("dims")?)?;
            let mut bytes = Vec::new();
            File::open(path)
                .and_then(|mut f| f.read_to_end(&mut bytes))
                .map_err(|e| format!("cannot read {}: {}", path, e))?;
            if bytes.len() != dims.len() * 4 {
                return Err(format!(
                    "{} holds {} bytes but dims {:?} need {}",
                    path,
                    bytes.len(),
                    dims.as_vec(),
                    dims.len() * 4
                ));
            }
            let data: Vec<f32> = bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                .collect();
            if data.iter().any(|v| !v.is_finite()) {
                return Err(format!("{} contains non-finite values", path));
            }
            Ok(Field::new(path.to_string(), dims, data))
        }
        (None, Some(name)) => {
            let spec =
                dataset_by_name(name).ok_or_else(|| format!("unknown dataset '{}'", name))?;
            let elements: usize = args
                .require("elements")?
                .parse()
                .map_err(|_| "bad --elements value".to_string())?;
            let seed: u64 = args
                .get("seed")
                .unwrap_or("42")
                .parse()
                .map_err(|_| "bad --seed value".to_string())?;
            Ok(generate(&spec, elements, seed))
        }
        (Some(_), Some(_)) => Err("--input and --dataset are mutually exclusive".to_string()),
        (None, None) => Err("provide either --input FILE --dims ... or --dataset NAME".to_string()),
    }
}

fn cli_gpu() -> Gpu {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    Gpu::with_host_threads(GpuConfig::v100(), threads)
}

fn connect(args: &Args) -> Result<Client, String> {
    let addr = ListenAddr::parse(args.require("addr")?)?;
    Client::connect(&addr).map_err(|e| format!("cannot connect to {}: {}", addr, e))
}

/// Parses and validates the shared compression options (`--decoder/--eb/--alphabet`).
fn parse_sz_config(args: &Args) -> Result<SzConfig, String> {
    let decoder = parse_decoder(args.get("decoder").unwrap_or("gap"))?;
    let error_bound = parse_error_bound(args.get("eb").unwrap_or("rel:1e-3"))?;
    let alphabet_size: usize = args
        .get("alphabet")
        .unwrap_or("1024")
        .parse()
        .map_err(|_| "bad --alphabet value".to_string())?;
    if !(4..=65536).contains(&alphabet_size) || !alphabet_size.is_power_of_two() {
        return Err("--alphabet must be a power of two in 4..=65536".to_string());
    }
    Ok(SzConfig {
        error_bound,
        alphabet_size,
        decoder,
    })
}

fn compress_one(gpu: &Gpu, field: &Field, config: &SzConfig) -> (Compressed, String) {
    let (compressed, stats) = compress_on(gpu, field, config);
    let phases = stats
        .encode
        .phases()
        .iter()
        .map(|(name, p)| format!("{} {:.3} ms", name, p.seconds * 1e3))
        .collect::<Vec<_>>()
        .join(" | ");
    let report = format!(
        "encode: {:.3} ms simulated ({:.1} GB/s on quant codes, {:.1} GB/s overall) [{}]",
        stats.encode.total_seconds() * 1e3,
        stats.encode_throughput_gbs(compressed.quant_code_bytes()),
        stats.overall_throughput_gbs(compressed.original_bytes()),
        phases
    );
    (compressed, report)
}

fn cmd_compress(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    if args.has("snapshot") {
        return cmd_compress_snapshot(&args);
    }
    let field = load_field(&args)?;
    let output = args.require("output")?;
    let config = parse_sz_config(&args)?;

    if field.is_empty() {
        return Err("input field is empty; nothing to compress".to_string());
    }

    // Encode on the simulated GPU (bit-identical to the host encoder) so the encoder
    // throughput can be reported alongside the archive.
    let gpu = cli_gpu();
    let (compressed, encode_report) = compress_one(&gpu, &field, &config);

    let file = File::create(output).map_err(|e| format!("cannot create {}: {}", output, e))?;
    let mut writer = ArchiveWriter::new(BufWriter::new(file));
    let written = writer
        .write_compressed(&compressed)
        .map_err(|e| e.to_string())?;
    writer.into_inner().map_err(|e| e.to_string())?;

    out!(
        "{}: {} elements ({} bytes) -> {} ({} bytes, {:.2}x)",
        field.name,
        field.len(),
        field.bytes(),
        output,
        written,
        field.bytes() as f64 / written as f64
    );
    out!("{}", encode_report);
    let file = File::open(output).map_err(|e| format!("cannot reopen {}: {}", output, e))?;
    let info = read_info(&mut BufReader::new(file)).map_err(|e| e.to_string())?;
    out!("{}", info);
    Ok(())
}

/// `hfz compress --snapshot`: packs several dataset fields into one sharded snapshot
/// archive with a manifest. Field *i* is generated with `--seed + i`, so any field can
/// be reproduced standalone (`hfz compress --dataset NAME --seed S+i`) and compared
/// byte-for-byte against a manifest-seek extraction.
fn cmd_compress_snapshot(args: &Args) -> Result<(), String> {
    let names: Vec<&str> = args.require("dataset")?.split(',').collect();
    if names.len() < 2 {
        return Err("--snapshot expects at least two comma-separated datasets".to_string());
    }
    let output = args.require("output")?;
    let config = parse_sz_config(args)?;
    let elements: usize = args
        .require("elements")?
        .parse()
        .map_err(|_| "bad --elements value".to_string())?;
    let seed: u64 = args
        .get("seed")
        .unwrap_or("42")
        .parse()
        .map_err(|_| "bad --seed value".to_string())?;

    let gpu = cli_gpu();
    let mut fields: Vec<(String, Compressed)> = Vec::with_capacity(names.len());
    for (i, name) in names.iter().enumerate() {
        let spec = dataset_by_name(name).ok_or_else(|| format!("unknown dataset '{}'", name))?;
        let field = generate(&spec, elements, seed + i as u64);
        let (compressed, encode_report) = compress_one(&gpu, &field, &config);
        out!(
            "field {} '{}': {} elements, {}",
            i,
            spec.name,
            field.len(),
            encode_report
        );
        fields.push((spec.name.to_string(), compressed));
    }
    let refs: Vec<(&str, &Compressed)> = fields
        .iter()
        .map(|(name, compressed)| (name.as_str(), compressed))
        .collect();

    let file = File::create(output).map_err(|e| format!("cannot create {}: {}", output, e))?;
    let mut writer = ArchiveWriter::new(BufWriter::new(file));
    let written = writer.write_snapshot(&refs).map_err(|e| e.to_string())?;
    writer.into_inner().map_err(|e| e.to_string())?;

    let original: u64 = fields.iter().map(|(_, c)| c.original_bytes()).sum();
    out!(
        "snapshot {}: {} fields, {} -> {} bytes ({:.2}x)",
        output,
        fields.len(),
        original,
        written,
        original as f64 / written as f64
    );
    let bytes = read_archive_file(output)?;
    let snapshot = Snapshot::parse(&bytes).map_err(|e| e.to_string())?;
    out!(
        "{}",
        snapshot.manifest().expect("snapshot writes a manifest")
    );
    Ok(())
}

fn write_f32(path: &str, data: &[f32]) -> Result<(), String> {
    let out = File::create(path).map_err(|e| format!("cannot create {}: {}", path, e))?;
    let mut out = BufWriter::new(out);
    for v in data {
        out.write_all(&v.to_le_bytes())
            .map_err(|e| format!("write failed: {}", e))?;
    }
    out.flush().map_err(|e| format!("write failed: {}", e))
}

/// Decompresses one already-read field archive to `output` and reports the timing.
fn decompress_to(
    gpu: &Gpu,
    archive: huffdec_container::Archive,
    label: &str,
    output: &str,
) -> Result<(), String> {
    let compressed = archive
        .into_field()
        .ok_or_else(|| format!("{} is payload-only; nothing to reconstruct", label))?;
    // A CRC-valid archive whose payload disagrees with its decoder tag surfaces here as
    // a typed error, reported through `ContainerError` like any other invalid archive.
    let decompressed =
        decompress(gpu, &compressed).map_err(|e| ContainerError::from(e).to_string())?;
    write_f32(output, &decompressed.data)?;
    out!(
        "{} -> {}: {} elements, simulated decompression {:.3} ms ({:.1} GB/s overall)",
        label,
        output,
        decompressed.data.len(),
        decompressed.stats.total_seconds * 1e3,
        decompressed
            .stats
            .overall_throughput_gbs(compressed.original_bytes())
    );
    Ok(())
}

fn cmd_decompress(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let archive_path = args
        .positionals
        .first()
        .ok_or_else(|| "expected an archive path".to_string())?;
    let bytes = read_archive_file(archive_path)?;
    let snapshot = Snapshot::parse(&bytes).map_err(|e| e.to_string())?;
    let gpu = cli_gpu();

    // `--all`: every field into --output-dir, named by the manifest (or by index for
    // manifest-less files).
    if args.has("all") {
        let dir = args.require("output-dir")?;
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {}", dir, e))?;
        let count = snapshot.field_count().map_err(|e| e.to_string())?;
        for index in 0..count {
            let name = snapshot
                .manifest()
                .map(|m| m.entries()[index].name.clone())
                .unwrap_or_else(|| format!("field{}", index));
            let archive = snapshot.read_field(index).map_err(|e| e.to_string())?;
            let output = format!("{}/{}.f32", dir.trim_end_matches('/'), name);
            decompress_to(
                &gpu,
                archive,
                &format!("{}[{}]", archive_path, name),
                &output,
            )?;
        }
        return Ok(());
    }

    let output = args.require("output")?;
    // `--field NAME|INDEX`: seek straight to one field via the manifest.
    if let Some(field) = args.get("field") {
        let archive = match field.parse::<usize>() {
            Ok(index) => snapshot.read_field(index),
            Err(_) => snapshot.read_field_by_name(field),
        }
        .map_err(|e| e.to_string())?;
        return decompress_to(
            &gpu,
            archive,
            &format!("{}[{}]", archive_path, field),
            output,
        );
    }

    // Bare decompress: the whole file must be (or start with) a single field. A
    // multi-field snapshot without a field selector is ambiguous — refuse it.
    if let Some(manifest) = snapshot.manifest() {
        if manifest.len() > 1 {
            return Err(format!(
                "snapshot has {} fields; pass --field NAME or --all --output-dir DIR",
                manifest.len()
            ));
        }
    }
    let archive = snapshot.read_field(0).map_err(|e| e.to_string())?;
    decompress_to(&gpu, archive, archive_path, output)
}

/// Reads a whole archive file so the CLI can insist the file holds exactly a sequence
/// of archives and nothing else (trailing bytes after the last end marker are reported,
/// unlike the streaming reader, which by design leaves the stream open for the next
/// archive).
fn read_archive_file(path: &str) -> Result<Vec<u8>, String> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| format!("cannot open {}: {}", path, e))?;
    Ok(bytes)
}

fn cmd_inspect(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let archive_path = args
        .positionals
        .first()
        .ok_or_else(|| "expected an archive path".to_string())?;
    let bytes = read_archive_file(archive_path)?;
    let json = args.has("json");
    let snapshot = Snapshot::parse(&bytes).map_err(|e| e.to_string())?;
    let mut rest = snapshot.archive_bytes();
    let mut infos = Vec::new();
    while !rest.is_empty() {
        infos.push(read_info(&mut rest).map_err(|e| e.to_string())?);
    }
    if infos.is_empty() {
        return Err("file is empty".to_string());
    }
    if json {
        // Machine-readable for hfzd tooling and tests (no screen-scraping): plain files
        // keep the one-object-per-archive array; snapshot files wrap it with their
        // manifest.
        let body = infos
            .iter()
            .map(|i| i.to_json())
            .collect::<Vec<_>>()
            .join(",");
        match snapshot.manifest() {
            Some(manifest) => out!(
                "{{\"manifest\":{},\"archives\":[{}]}}",
                manifest.to_json(),
                body
            ),
            None => out!("[{}]", body),
        }
    } else {
        if let Some(manifest) = snapshot.manifest() {
            out!("{}", manifest);
            out!();
        }
        for (i, info) in infos.iter().enumerate() {
            if i > 0 {
                out!();
            }
            out!("{}", info);
        }
    }
    Ok(())
}

fn cmd_verify(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    if args.has("addr") {
        return cmd_verify_remote(&args);
    }
    let archive_path = args
        .positionals
        .first()
        .ok_or_else(|| "expected an archive path".to_string())?;
    let bytes = read_archive_file(archive_path)?;

    // Manifest pass (snapshot archives): framing, checksum, and shard-extent
    // validation of the index happen inside `Snapshot::parse`.
    let snapshot = Snapshot::parse(&bytes).map_err(|e| e.to_string())?;
    if let Some(manifest) = snapshot.manifest() {
        out!(
            "manifest:  ok ({} fields, {} shard bytes)",
            manifest.len(),
            manifest.shard_bytes()
        );
    }

    // Structural pass: framing and checksums of every archive in the file; anything
    // left over after the last end marker is corruption, not slack.
    let mut cursor = snapshot.archive_bytes();
    let mut count = 0;
    while !cursor.is_empty() {
        let info = read_info(&mut cursor).map_err(|e| e.to_string())?;
        count += 1;
        out!(
            "structure: ok (archive {}: {} sections, {} bytes)",
            count,
            info.sections.len(),
            info.total_bytes
        );
    }
    if count == 0 {
        return Err("file is empty".to_string());
    }
    if count > 1 && snapshot.manifest().is_none() {
        out!(
            "note: file concatenates {} archives; verifying the first",
            count
        );
    }

    let deep = args.has("deep");
    let expected_digest = args
        .get("digest")
        .map(|hex| u32::from_str_radix(hex.trim_start_matches("0x"), 16))
        .transpose()
        .map_err(|_| "bad --digest value (expected hex CRC32)".to_string())?;
    let gpu = cli_gpu();

    // Multi-field snapshots: reassemble every field (cross-checked against its
    // manifest entry), and — under --deep — decode each and check its stored digest.
    // A semantically corrupt field anywhere in the snapshot must fail verification,
    // exactly as the daemon's VERIFY does.
    if snapshot.manifest().map(|m| m.len() > 1).unwrap_or(false) {
        if expected_digest.is_some() {
            return Err(
                "--digest applies to single-field archives; use --deep for snapshots".to_string(),
            );
        }
        if args.get("input").is_some() || args.get("dataset").is_some() {
            return Err(
                "--input/--dataset bound checks apply to single-field archives".to_string(),
            );
        }
        let manifest = snapshot.manifest().expect("checked above");
        for (index, entry) in manifest.entries().iter().enumerate() {
            let archive = snapshot.read_field(index).map_err(|e| e.to_string())?;
            out!(
                "contents:  ok (field '{}': {} symbols, decoder {})",
                entry.name,
                archive.payload().num_symbols(),
                archive.decoder().name()
            );
            if deep {
                let decoded = huffdec_core::decode(&gpu, archive.decoder(), archive.payload())
                    .map_err(|e| ContainerError::from(e).to_string())?;
                let computed = huffdec_core::crc32_symbols(&decoded.symbols);
                let stored = match &archive {
                    huffdec_container::Archive::Field(c) => c.decoded_crc,
                    huffdec_container::Archive::Payload { .. } => None,
                };
                match stored {
                    Some(expected) if computed != expected => {
                        return Err(format!(
                            "deep verification failed: field '{}' digests to {:08x}, expected {:08x}",
                            entry.name, computed, expected
                        ));
                    }
                    Some(_) => out!(
                        "deep:      ok (field '{}': decoded CRC32 {:08x} over {} symbols)",
                        entry.name,
                        computed,
                        decoded.symbols.len()
                    ),
                    None => out!(
                        "deep:      field '{}' stores no decoded-stream digest",
                        entry.name
                    ),
                }
            }
        }
        return Ok(());
    }

    // Semantic pass: full reassembly (cross-checked against the manifest entry when
    // the file carries one).
    let archive = snapshot.read_field(0).map_err(|e| e.to_string())?;
    out!(
        "contents:  ok ({} symbols, decoder {})",
        archive.payload().num_symbols(),
        archive.decoder().name()
    );

    // Deep pass: decode the symbol stream and check it against the decoded-stream
    // digest (the stored trailer, or a caller-supplied --digest). This catches archives
    // whose sections are individually CRC-valid but decode to the wrong codes.
    if deep || expected_digest.is_some() {
        let decoded = huffdec_core::decode(&gpu, archive.decoder(), archive.payload())
            .map_err(|e| ContainerError::from(e).to_string())?;
        let computed = huffdec_core::crc32_symbols(&decoded.symbols);
        let stored = match &archive {
            huffdec_container::Archive::Field(c) => c.decoded_crc,
            huffdec_container::Archive::Payload { .. } => None,
        };
        let expected = expected_digest.or(stored).ok_or_else(|| {
            "archive stores no decoded-stream digest; pass --digest HEX to check against one"
                .to_string()
        })?;
        if computed != expected {
            return Err(format!(
                "deep verification failed: decoded stream digests to {:08x}, expected {:08x}",
                computed, expected
            ));
        }
        out!(
            "deep:      ok (decoded CRC32 {:08x} over {} symbols)",
            computed,
            decoded.symbols.len()
        );
    }

    let Some(compressed) = archive.into_field() else {
        out!("payload-only archive: nothing further to verify");
        return Ok(());
    };

    // Reconstruction pass: decode and check the error bound against the original when
    // one is provided.
    let decompressed =
        decompress(&gpu, &compressed).map_err(|e| ContainerError::from(e).to_string())?;
    out!(
        "decode:    ok ({} elements reconstructed)",
        decompressed.data.len()
    );

    if args.get("input").is_some() || args.get("dataset").is_some() {
        let field = load_field(&args)?;
        if field.len() != decompressed.data.len() {
            return Err(format!(
                "original has {} elements, archive reconstructs {}",
                field.len(),
                decompressed.data.len()
            ));
        }
        let bound = compressed
            .config
            .error_bound
            .to_absolute(field.range_span() as f64);
        match verify_error_bound(&field.data, &decompressed.data, bound) {
            None => out!("bound:     ok (|error| <= {:e} everywhere)", bound),
            Some(idx) => {
                return Err(format!(
                    "error bound {:e} violated at element {}: {} vs {}",
                    bound, idx, field.data[idx], decompressed.data[idx]
                ))
            }
        }
    }
    Ok(())
}

fn cmd_verify_remote(args: &Args) -> Result<(), String> {
    let archive = args.require("archive")?;
    let mut client = connect(args)?;
    let report = client.verify(archive).map_err(|e| e.to_string())?;
    out!("{}", report.trim_end());
    if report.contains("DIGEST MISMATCH") {
        return Err("remote deep verification reported digest failures".to_string());
    }
    Ok(())
}

fn cmd_serve(rest: &[String]) -> Result<(), String> {
    let options = DaemonOptions::parse(rest)?;
    run_daemon(&options)
}

fn parse_range(spec: &str) -> Result<(u64, u64), String> {
    let (start, len) = spec
        .split_once(':')
        .ok_or_else(|| format!("range '{}' is not START:LEN", spec))?;
    let start: u64 = start.parse().map_err(|_| "bad range start".to_string())?;
    let len: u64 = len.parse().map_err(|_| "bad range length".to_string())?;
    Ok((start, len))
}

fn cmd_get(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let archive = args.require("archive")?;
    let output = args.require("output")?;
    let field: u32 = args
        .get("field")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "bad --field value".to_string())?;
    let kind = if args.has("codes") {
        GetKind::Codes
    } else {
        GetKind::Data
    };
    let range = args.get("range").map(parse_range).transpose()?;

    let mut client = connect(&args)?;
    let result = client
        .get(archive, field, kind, range)
        .map_err(|e| e.to_string())?;

    let file = File::create(output).map_err(|e| format!("cannot create {}: {}", output, e))?;
    let mut file = BufWriter::new(file);
    file.write_all(&result.bytes)
        .and_then(|_| file.flush())
        .map_err(|e| format!("write failed: {}", e))?;

    out!(
        "{}[{}] -> {}: {} {} elements ({} bytes){}{}",
        archive,
        field,
        output,
        result.elements,
        if result.kind == GetKind::Data {
            "f32"
        } else {
            "code"
        },
        result.bytes.len(),
        if result.from_cache { ", cached" } else { "" },
        if result.partial {
            ", partial decode"
        } else {
            ""
        }
    );
    Ok(())
}

/// `hfz batch`: one `GETBATCH` round trip fetching several whole fields; the daemon
/// decodes every cache miss as a single batched wave. Each field lands in
/// `PREFIX.<index>`.
fn cmd_batch(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let archive = args.require("archive")?;
    let prefix = args.require("output-prefix")?;
    let fields: Vec<u32> = args
        .require("fields")?
        .split(',')
        .map(|p| {
            p.trim()
                .parse::<u32>()
                .map_err(|_| format!("bad field index '{}'", p))
        })
        .collect::<Result<_, _>>()?;
    if fields.is_empty() {
        return Err("--fields expects at least one index".to_string());
    }
    let kind = if args.has("codes") {
        GetKind::Codes
    } else {
        GetKind::Data
    };

    let mut client = connect(&args)?;
    let items = client
        .get_batch(archive, kind, &fields)
        .map_err(|e| e.to_string())?;
    let mut cached = 0u32;
    for (field, item) in fields.iter().zip(&items) {
        let output = format!("{}.{}", prefix, field);
        let file = File::create(&output).map_err(|e| format!("cannot create {}: {}", output, e))?;
        let mut file = BufWriter::new(file);
        file.write_all(&item.bytes)
            .and_then(|_| file.flush())
            .map_err(|e| format!("write failed: {}", e))?;
        cached += item.from_cache as u32;
        out!(
            "{}[{}] -> {}: {} {} elements ({} bytes){}",
            archive,
            field,
            output,
            item.elements,
            if kind == GetKind::Data { "f32" } else { "code" },
            item.bytes.len(),
            if item.from_cache { ", cached" } else { "" }
        );
    }
    out!(
        "batch: {} fields, {} cached, {} decoded as one wave",
        items.len(),
        cached,
        items.len() as u32 - cached
    );
    Ok(())
}

fn cmd_list(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let mut client = connect(&args)?;
    out!("{}", client.list().map_err(|e| e.to_string())?);
    Ok(())
}

fn cmd_stats(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let mut client = connect(&args)?;
    out!("{}", client.stats().map_err(|e| e.to_string())?);
    Ok(())
}

fn cmd_load(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let name = args.require("name")?;
    let path = args.require("path")?;
    let mut client = connect(&args)?;
    let fields = client.load(name, path).map_err(|e| e.to_string())?;
    out!("loaded '{}' from {} ({} fields)", name, path, fields);
    Ok(())
}

fn cmd_shutdown(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let mut client = connect(&args)?;
    client.shutdown().map_err(|e| e.to_string())?;
    out!("daemon is shutting down");
    Ok(())
}
