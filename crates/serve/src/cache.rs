//! The decoded-field LRU cache: bytes-budgeted, not entry-counted.
//!
//! The GAMESS serving scenario keeps snapshots compressed in memory and decodes fields
//! on demand; the cache is what turns "every `GET` pays a GPU decode" into "hot fields
//! are a memcpy". Decoded fields vary wildly in size (a 2⁰-element diagnostic next to a
//! 2²⁷-element grid), so the budget is expressed in **bytes**: entries are evicted in
//! least-recently-used order until an insertion fits, and an entry larger than the whole
//! budget is simply not cached (it would evict everything for a single use).
//!
//! The cache itself is a plain data structure; the server wraps it in a
//! `std::sync::Mutex` and shares it across client threads. Entries hand out
//! `Arc<Vec<u8>>`, so a hit holds the lock only long enough to bump recency — the bytes
//! are copied to the socket outside the lock, and an entry evicted mid-response stays
//! alive until the last reader drops it.

use std::collections::HashMap;
use std::sync::Arc;

use huffdec_metrics::Metrics;

use crate::protocol::GetKind;

/// Cache key: one decoded representation of one field of one loaded archive.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Name the archive was loaded under.
    pub archive: String,
    /// Load generation of the archive (`LoadedArchive::generation`). A re-`LOAD` under
    /// the same name bumps the generation, so a decode of the *old* archive that races
    /// the re-load and inserts after `invalidate_archive` lands under a key no new
    /// request ever looks up — it idles until the LRU evicts it, instead of being
    /// served as a permanently pinned stale hit.
    pub generation: u64,
    /// Field index within the archive file.
    pub field: u32,
    /// Which representation (reconstructed f32 data vs. decoded u16 codes).
    pub kind: GetKind,
}

#[derive(Debug)]
struct Entry {
    bytes: Arc<Vec<u8>>,
    last_used: u64,
}

/// A read-back of the cache's lifetime counters (kept as a plain struct for consumers
/// that want one coherent copy; the live counters are `cache_*` instruments in the
/// shared [`Metrics`] registry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get`s that found their entry.
    pub hits: u64,
    /// `get`s that did not.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries successfully inserted.
    pub insertions: u64,
    /// Insertions refused because the entry alone exceeds the budget.
    pub uncacheable: u64,
}

/// A bytes-budgeted LRU cache of decoded fields.
///
/// All counters live in a [`Metrics`] registry, so a cache built with
/// [`DecodedLru::with_metrics`] shares its hit/miss/eviction accounting with the codec
/// that fills it — one registry, one `/metrics` render.
#[derive(Debug)]
pub struct DecodedLru {
    budget_bytes: u64,
    used_bytes: u64,
    clock: u64,
    entries: HashMap<CacheKey, Entry>,
    metrics: Arc<Metrics>,
}

impl DecodedLru {
    /// Creates a cache that will never hold more than `budget_bytes` of decoded data,
    /// recording into its own private registry.
    pub fn new(budget_bytes: u64) -> Self {
        DecodedLru::with_metrics(budget_bytes, Arc::new(Metrics::new()))
    }

    /// Like [`DecodedLru::new`], but recording into a shared registry — how the daemon
    /// points the cache and its codec at the same instruments.
    pub fn with_metrics(budget_bytes: u64, metrics: Arc<Metrics>) -> Self {
        metrics.cache_budget_bytes.set(budget_bytes);
        DecodedLru {
            budget_bytes,
            used_bytes: 0,
            clock: 0,
            entries: HashMap::new(),
            metrics,
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Bytes currently held; never exceeds the budget.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Snapshot of the lifetime counters (read back from the shared registry).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.metrics.cache_hits.get(),
            misses: self.metrics.cache_misses.get(),
            evictions: self.metrics.cache_evictions.get(),
            insertions: self.metrics.cache_insertions.get(),
            uncacheable: self.metrics.cache_uncacheable.get(),
        }
    }

    /// The registry this cache records into.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    fn sync_gauges(&self) {
        self.metrics.cache_used_bytes.set(self.used_bytes);
        self.metrics.cache_entries.set(self.entries.len() as u64);
    }

    /// Looks up `key`, counting a hit or a miss and refreshing recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        self.clock += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.clock;
                self.metrics.cache_hits.inc();
                Some(Arc::clone(&entry.bytes))
            }
            None => {
                self.metrics.cache_misses.inc();
                None
            }
        }
    }

    /// Peeks without touching recency or counters (used when a decode raced another
    /// thread's insertion and the result only needs deduplicating, not accounting).
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        self.entries.get(key).map(|e| Arc::clone(&e.bytes))
    }

    /// Inserts `bytes` under `key`, evicting least-recently-used entries until the
    /// budget holds. Returns the (possibly pre-existing) cached value: if another
    /// thread inserted the same key first, that copy wins and no accounting changes.
    /// An entry larger than the whole budget is returned uncached.
    pub fn insert(&mut self, key: CacheKey, bytes: Vec<u8>) -> Arc<Vec<u8>> {
        if let Some(existing) = self.entries.get(&key) {
            return Arc::clone(&existing.bytes);
        }
        let size = bytes.len() as u64;
        let bytes = Arc::new(bytes);
        if size > self.budget_bytes {
            self.metrics.cache_uncacheable.inc();
            return bytes;
        }
        while self.used_bytes + size > self.budget_bytes {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("used_bytes > 0 implies at least one entry");
            let evicted = self.entries.remove(&victim).expect("victim exists");
            self.used_bytes -= evicted.bytes.len() as u64;
            self.metrics.cache_evictions.inc();
        }
        self.clock += 1;
        self.used_bytes += size;
        self.metrics.cache_insertions.inc();
        self.entries.insert(
            key,
            Entry {
                bytes: Arc::clone(&bytes),
                last_used: self.clock,
            },
        );
        self.sync_gauges();
        bytes
    }

    /// Drops every entry belonging to `archive` (used when an archive is re-loaded
    /// under the same name, so stale decodes cannot be served).
    pub fn invalidate_archive(&mut self, archive: &str) {
        let keys: Vec<CacheKey> = self
            .entries
            .keys()
            .filter(|k| k.archive == archive)
            .cloned()
            .collect();
        for key in keys {
            let entry = self.entries.remove(&key).expect("key just listed");
            self.used_bytes -= entry.bytes.len() as u64;
        }
        self.sync_gauges();
    }

    /// Checks the structural invariants the concurrency tests assert after every
    /// operation: accounted bytes match the entries exactly and never exceed the budget.
    pub fn check_invariants(&self) -> Result<(), String> {
        let actual: u64 = self.entries.values().map(|e| e.bytes.len() as u64).sum();
        if actual != self.used_bytes {
            return Err(format!(
                "used_bytes {} does not match entry total {}",
                self.used_bytes, actual
            ));
        }
        if self.used_bytes > self.budget_bytes {
            return Err(format!(
                "used_bytes {} exceeds budget {}",
                self.used_bytes, self.budget_bytes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(archive: &str, field: u32) -> CacheKey {
        CacheKey {
            archive: archive.into(),
            generation: 1,
            field,
            kind: GetKind::Data,
        }
    }

    #[test]
    fn hit_miss_and_insert_accounting() {
        let mut c = DecodedLru::new(100);
        assert!(c.get(&key("a", 0)).is_none());
        c.insert(key("a", 0), vec![1; 40]);
        let got = c.get(&key("a", 0)).expect("cached");
        assert_eq!(got.len(), 40);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(c.used_bytes(), 40);
        c.check_invariants().unwrap();
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let mut c = DecodedLru::new(100);
        c.insert(key("a", 0), vec![0; 40]);
        c.insert(key("a", 1), vec![0; 40]);
        // Touch field 0 so field 1 becomes the LRU victim.
        assert!(c.get(&key("a", 0)).is_some());
        c.insert(key("a", 2), vec![0; 40]);
        assert!(c.peek(&key("a", 0)).is_some(), "recently used survives");
        assert!(c.peek(&key("a", 1)).is_none(), "LRU entry evicted");
        assert!(c.peek(&key("a", 2)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.used_bytes() <= c.budget_bytes());
        c.check_invariants().unwrap();
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let mut c = DecodedLru::new(64);
        c.insert(key("a", 0), vec![0; 32]);
        let big = c.insert(key("a", 1), vec![0; 65]);
        assert_eq!(big.len(), 65, "value is still returned to the caller");
        assert!(c.peek(&key("a", 1)).is_none());
        assert!(c.peek(&key("a", 0)).is_some(), "existing entries survive");
        assert_eq!(c.stats().uncacheable, 1);
        assert_eq!(c.stats().evictions, 0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_insert_returns_the_first_copy() {
        let mut c = DecodedLru::new(100);
        let first = c.insert(key("a", 0), vec![1; 10]);
        let second = c.insert(key("a", 0), vec![2; 10]);
        assert!(Arc::ptr_eq(&first, &second), "first insertion wins");
        assert_eq!(c.stats().insertions, 1);
        assert_eq!(c.used_bytes(), 10);
    }

    #[test]
    fn keys_distinguish_kind_and_field() {
        let mut c = DecodedLru::new(1000);
        c.insert(key("a", 0), vec![0; 8]);
        let codes = CacheKey {
            archive: "a".into(),
            generation: 1,
            field: 0,
            kind: GetKind::Codes,
        };
        assert!(c.peek(&codes).is_none());
        c.insert(codes.clone(), vec![0; 4]);
        assert_eq!(c.len(), 2);
        assert!(c.peek(&codes).is_some());
    }

    #[test]
    fn generations_isolate_reloads() {
        let mut c = DecodedLru::new(1000);
        // A stale insert under the old generation (the LOAD/GET race) is invisible to
        // requests addressing the new generation.
        let old_gen = CacheKey {
            generation: 1,
            ..key("a", 0)
        };
        let new_gen = CacheKey {
            generation: 2,
            ..key("a", 0)
        };
        c.insert(old_gen.clone(), vec![1; 8]);
        assert!(c.get(&new_gen).is_none(), "new generation never sees it");
        c.insert(new_gen.clone(), vec![2; 8]);
        assert_eq!(c.get(&new_gen).unwrap()[0], 2);
        // Name-based invalidation drops every generation of the name.
        c.invalidate_archive("a");
        assert!(c.peek(&old_gen).is_none() && c.peek(&new_gen).is_none());
        c.check_invariants().unwrap();
    }

    #[test]
    fn invalidate_archive_drops_only_that_archive() {
        let mut c = DecodedLru::new(1000);
        c.insert(key("a", 0), vec![0; 8]);
        c.insert(key("a", 1), vec![0; 8]);
        c.insert(key("b", 0), vec![0; 8]);
        c.invalidate_archive("a");
        assert!(c.peek(&key("a", 0)).is_none());
        assert!(c.peek(&key("a", 1)).is_none());
        assert!(c.peek(&key("b", 0)).is_some());
        assert_eq!(c.used_bytes(), 8);
        c.check_invariants().unwrap();
    }

    #[test]
    fn evictions_cascade_until_the_insertion_fits() {
        let mut c = DecodedLru::new(100);
        for f in 0..4 {
            c.insert(key("a", f), vec![0; 25]);
        }
        assert_eq!(c.len(), 4);
        c.insert(key("b", 0), vec![0; 90]);
        assert!(c.peek(&key("b", 0)).is_some());
        assert_eq!(c.stats().evictions, 4, "all four entries had to go");
        assert_eq!(c.used_bytes(), 90);
        c.check_invariants().unwrap();
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let mut c = DecodedLru::new(0);
        c.insert(key("a", 0), vec![0; 1]);
        assert!(c.is_empty());
        assert_eq!(c.stats().uncacheable, 1);
        c.check_invariants().unwrap();
    }
}
