//! Client side of the `hfzd` protocol: one [`Connection`], synchronous
//! request/response.
//!
//! Used by the `hfz` remote subcommands (`get`, `list`, `stats`, `load`, `shutdown`,
//! `verify --addr`), the `hfzr` router's shard links, the CI smoke job, and the
//! concurrency tests — each test thread holds its own `Connection`.
//!
//! A `Connection` keeps the *address* authoritative rather than the socket: it can
//! dial eagerly ([`Connection::connect`]) or lazily ([`Connection::new`]), and its
//! [`RetryPolicy`] governs what happens when a previously working socket turns out to
//! be dead — by default it re-dials once and retries that one request, so a daemon
//! restart does not poison a long-lived link forever. Socket timeouts are part of the
//! same policy: a dead peer surfaces as the typed [`ClientError::TimedOut`] instead of
//! hanging a blocking read forever, and the daemon's overload reply surfaces as
//! [`ClientError::Busy`].

use std::time::Duration;

use crate::net::{connect, Conn, ListenAddr};
use crate::protocol::{
    read_frame, write_frame, BatchGetItem, GetKind, ProtocolError, Request, Response,
    MAX_REQUEST_BYTES, MAX_RESPONSE_BYTES,
};

/// Everything a request can fail with on the client side.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Protocol(ProtocolError),
    /// The daemon answered with an error message.
    Remote(String),
    /// The daemon shed the request: its decode queue is full. Retryable after a
    /// backoff — the daemon is alive, just saturated.
    Busy,
    /// A socket timeout expired mid-request. The connection is dropped (a late reply
    /// would desync the stream) but this is *not* a disconnect: the peer may be alive
    /// and slow, so the request is not transparently retried.
    TimedOut,
    /// The daemon answered with a response of the wrong shape.
    UnexpectedResponse,
}

impl ClientError {
    /// True when the failure means the *connection* died (broken pipe, reset, EOF
    /// before the response) or could not be made at all (refused — the peer is gone),
    /// rather than the request being bad. Disconnects are the retryable class: the
    /// peer may have restarted, so re-dialing can succeed where the poisoned
    /// connection cannot — and for the router they are the mark-the-shard-down
    /// signal. Remote errors, `BUSY`, timeouts, and malformed responses are not
    /// disconnects — the daemon (probably) answered, it just did not like the request
    /// or could not take it right now.
    pub fn is_disconnect(&self) -> bool {
        match self {
            ClientError::Protocol(ProtocolError::Io(e)) => matches!(
                e.kind(),
                std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::NotConnected
            ),
            ClientError::Protocol(ProtocolError::Malformed(reason)) => {
                *reason == EOF_BEFORE_RESPONSE
            }
            _ => false,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "{}", e),
            ClientError::Remote(message) => write!(f, "daemon error: {}", message),
            ClientError::Busy => write!(f, "daemon is busy: decode queue is full"),
            ClientError::TimedOut => write!(f, "request timed out"),
            ClientError::UnexpectedResponse => write!(f, "daemon sent an unexpected response"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

impl From<ClientError> for huffdec_codec::HfzError {
    /// Every client-side failure — transport, daemon error response, shape mismatch —
    /// is a protocol error to the facade.
    fn from(e: ClientError) -> Self {
        huffdec_codec::HfzError::Protocol(e.to_string())
    }
}

/// The result of a `GET`.
#[derive(Debug, Clone)]
pub struct GetResult {
    /// What the bytes are (data = f32 LE, codes = u16 LE).
    pub kind: GetKind,
    /// Whether the daemon served the bytes from its decoded-field cache.
    pub from_cache: bool,
    /// Whether a partial (range-limited) decode produced them.
    pub partial: bool,
    /// Number of elements returned.
    pub elements: u64,
    /// The raw bytes.
    pub bytes: Vec<u8>,
}

impl GetResult {
    /// Decodes the payload as little-endian f32s (data requests).
    pub fn as_f32(&self) -> Vec<f32> {
        self.bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect()
    }

    /// Decodes the payload as little-endian u16s (code requests).
    pub fn as_u16(&self) -> Vec<u16> {
        self.bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes(c.try_into().expect("2-byte chunk")))
            .collect()
    }
}

/// The `Malformed` reason [`Connection::request`] reports when the daemon hangs up
/// before answering — kept as one constant so [`ClientError::is_disconnect`] can
/// recognize it.
const EOF_BEFORE_RESPONSE: &str = "connection closed before the response";

/// How a [`Connection`] behaves when the wire misbehaves.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// How many times a request on a **reused** connection that fails with a
    /// disconnect is re-dialed and retried. A failure on a freshly dialed connection
    /// is reported as-is (the daemon is actually gone), so callers see at most
    /// `redials` transparent retries per request. All daemon requests are idempotent
    /// (`LOAD` included — loading the same path again replaces the entry), so the
    /// retry is safe.
    pub redials: u32,
    /// Socket read timeout (`None` = block forever). An expiry surfaces as
    /// [`ClientError::TimedOut`].
    pub read_timeout: Option<Duration>,
    /// Socket write timeout (`None` = block forever).
    pub write_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            redials: 1,
            read_timeout: None,
            write_timeout: None,
        }
    }
}

/// One logical connection to a daemon: an address, a policy, and (when dialed) a
/// socket.
pub struct Connection {
    addr: ListenAddr,
    policy: RetryPolicy,
    conn: Option<Conn>,
}

impl Connection {
    /// Dials the daemon at `addr` now (so an unreachable daemon fails here, not on the
    /// first request), with the default policy.
    pub fn connect(addr: &ListenAddr) -> Result<Connection, ClientError> {
        let mut connection = Connection::new(addr.clone());
        connection.dial()?;
        Ok(connection)
    }

    /// A connection for `addr` that dials lazily on the first request, with the
    /// default policy. This is the long-lived-link constructor (the router's shard
    /// links): the peer does not need to be up yet.
    pub fn new(addr: ListenAddr) -> Connection {
        Connection::with_policy(addr, RetryPolicy::default())
    }

    /// A lazily dialing connection with an explicit policy.
    pub fn with_policy(addr: ListenAddr, policy: RetryPolicy) -> Connection {
        Connection {
            addr,
            policy,
            conn: None,
        }
    }

    /// The address requests are sent to.
    pub fn addr(&self) -> &ListenAddr {
        &self.addr
    }

    /// True when a socket is currently held (it may still be dead on the wire; the
    /// next request finds out).
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Drops the held socket, forcing the next request to dial fresh.
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    fn dial(&mut self) -> Result<&mut Conn, ClientError> {
        if self.conn.is_none() {
            let conn = connect(&self.addr)?;
            conn.set_timeouts(self.policy.read_timeout, self.policy.write_timeout)?;
            self.conn = Some(conn);
        }
        Ok(self.conn.as_mut().expect("just dialed"))
    }

    /// Sends one request and reads one response, applying the policy: a reused socket
    /// that turns out to be dead is re-dialed up to `redials` times, a timeout drops
    /// the socket and surfaces as [`ClientError::TimedOut`] (no transparent retry),
    /// and the daemon's overload reply surfaces as [`ClientError::Busy`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut redials_left = self.policy.redials;
        let mut reused = self.conn.is_some();
        loop {
            let conn = self.dial()?;
            match request_once(conn, request) {
                Ok(response) => return Ok(response),
                Err(e) => {
                    if let ClientError::Protocol(ProtocolError::Io(io)) = &e {
                        if matches!(
                            io.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) {
                            // A late reply would desync the stream; the socket is
                            // unusable even though the peer may be alive.
                            self.conn = None;
                            return Err(ClientError::TimedOut);
                        }
                    }
                    if e.is_disconnect() {
                        // Dead socket: never reuse it.
                        self.conn = None;
                        if reused && redials_left > 0 {
                            // The kept socket died since the last request (daemon
                            // restart, idle timeout, …). Re-dial and retry.
                            redials_left -= 1;
                            reused = false;
                            continue;
                        }
                    }
                    return Err(e);
                }
            }
        }
    }

    /// `LIST`: the archive/field metadata JSON document.
    pub fn list(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::List)? {
            Response::List(json) => Ok(json),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `STATS`: the counters JSON document.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `METRICS`: the registry in Prometheus text exposition format — the same
    /// document the HTTP sidecar serves on `GET /metrics`, fetched over the daemon
    /// protocol so `hfz stats --prom` works without a sidecar bound.
    pub fn metrics_prom(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `GET`: (a range of) a decoded field.
    pub fn get(
        &mut self,
        archive: &str,
        field: u32,
        kind: GetKind,
        range: Option<(u64, u64)>,
    ) -> Result<GetResult, ClientError> {
        let request = Request::Get {
            archive: archive.to_string(),
            field,
            kind,
            range,
        };
        match self.request(&request)? {
            Response::Get {
                kind,
                from_cache,
                partial,
                elements,
                bytes,
            } => Ok(GetResult {
                kind,
                from_cache,
                partial,
                elements,
                bytes,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `GETBATCH`: fetches several whole decoded fields of one archive in a single
    /// round trip; the daemon decodes every cache miss as one batched wave. Items come
    /// back in the order `fields` named them.
    pub fn get_batch(
        &mut self,
        archive: &str,
        kind: GetKind,
        fields: &[u32],
    ) -> Result<Vec<BatchGetItem>, ClientError> {
        let request = Request::GetBatch {
            archive: archive.to_string(),
            kind,
            fields: fields.to_vec(),
        };
        match self.request(&request)? {
            Response::GetBatch { items, .. } => Ok(items),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `LOAD`: loads an archive file on the daemon; returns its field count.
    pub fn load(&mut self, name: &str, path: &str) -> Result<u32, ClientError> {
        let request = Request::Load {
            name: name.to_string(),
            path: path.to_string(),
        };
        match self.request(&request)? {
            Response::Loaded { fields } => Ok(fields),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `VERIFY`: decodes every field of an archive on the daemon and checks digests.
    /// Returns the report; `Ok` does not imply the digests matched — check the report
    /// (the last line counts failures).
    pub fn verify(&mut self, archive: &str) -> Result<String, ClientError> {
        let request = Request::Verify {
            archive: archive.to_string(),
        };
        match self.request(&request)? {
            Response::Verify(report) => Ok(report),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `SHUTDOWN`: stops the daemon.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }
}

/// One request/response exchange on an already-dialed socket. Maps the daemon's typed
/// failure replies (`ERROR`, `BUSY`) to their [`ClientError`] variants.
fn request_once(conn: &mut Conn, request: &Request) -> Result<Response, ClientError> {
    write_frame(conn, &request.encode(), MAX_REQUEST_BYTES)?;
    let body = read_frame(conn, MAX_RESPONSE_BYTES)?.ok_or(ClientError::Protocol(
        ProtocolError::Malformed(EOF_BEFORE_RESPONSE),
    ))?;
    match Response::decode(&body)? {
        Response::Error(message) => Err(ClientError::Remote(message)),
        Response::Busy => Err(ClientError::Busy),
        response => Ok(response),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Listener;

    #[test]
    fn read_timeout_surfaces_as_timed_out() {
        // A listener that accepts (at the kernel level) but never replies.
        let listener = Listener::bind(&ListenAddr::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let policy = RetryPolicy {
            redials: 0,
            read_timeout: Some(Duration::from_millis(50)),
            write_timeout: Some(Duration::from_millis(50)),
        };
        let mut conn = Connection::with_policy(addr, policy);
        let err = conn.request(&Request::Stats).unwrap_err();
        assert!(
            matches!(err, ClientError::TimedOut),
            "expected TimedOut, got: {}",
            err
        );
        assert!(!err.is_disconnect(), "a timeout is not a disconnect");
        assert!(!conn.is_connected(), "the timed-out socket is dropped");
    }
}
