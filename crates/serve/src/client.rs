//! Client side of the `hfzd` protocol: one connection, synchronous request/response.
//!
//! Used by the `hfz` remote subcommands (`get`, `list`, `stats`, `load`, `shutdown`,
//! `verify --addr`), the CI smoke job, and the concurrency tests — each test thread
//! holds its own [`Client`].

use crate::net::{connect, Conn, ListenAddr};
use crate::protocol::{
    read_frame, write_frame, BatchGetItem, GetKind, ProtocolError, Request, Response,
    MAX_REQUEST_BYTES, MAX_RESPONSE_BYTES,
};

/// Everything a request can fail with on the client side.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Protocol(ProtocolError),
    /// The daemon answered with an error message.
    Remote(String),
    /// The daemon answered with a response of the wrong shape.
    UnexpectedResponse,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "{}", e),
            ClientError::Remote(message) => write!(f, "daemon error: {}", message),
            ClientError::UnexpectedResponse => write!(f, "daemon sent an unexpected response"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

impl From<ClientError> for huffdec_codec::HfzError {
    /// Every client-side failure — transport, daemon error response, shape mismatch —
    /// is a protocol error to the facade.
    fn from(e: ClientError) -> Self {
        huffdec_codec::HfzError::Protocol(e.to_string())
    }
}

/// The result of a `GET`.
#[derive(Debug, Clone)]
pub struct GetResult {
    /// What the bytes are (data = f32 LE, codes = u16 LE).
    pub kind: GetKind,
    /// Whether the daemon served the bytes from its decoded-field cache.
    pub from_cache: bool,
    /// Whether a partial (range-limited) decode produced them.
    pub partial: bool,
    /// Number of elements returned.
    pub elements: u64,
    /// The raw bytes.
    pub bytes: Vec<u8>,
}

impl GetResult {
    /// Decodes the payload as little-endian f32s (data requests).
    pub fn as_f32(&self) -> Vec<f32> {
        self.bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect()
    }

    /// Decodes the payload as little-endian u16s (code requests).
    pub fn as_u16(&self) -> Vec<u16> {
        self.bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes(c.try_into().expect("2-byte chunk")))
            .collect()
    }
}

/// One connection to a daemon.
pub struct Client {
    conn: Conn,
}

impl Client {
    /// Dials the daemon at `addr`.
    pub fn connect(addr: &ListenAddr) -> Result<Client, ClientError> {
        Ok(Client {
            conn: connect(addr)?,
        })
    }

    /// Sends one request and reads one response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.conn, &request.encode(), MAX_REQUEST_BYTES)?;
        let body = read_frame(&mut self.conn, MAX_RESPONSE_BYTES)?.ok_or(ClientError::Protocol(
            ProtocolError::Malformed("connection closed before the response"),
        ))?;
        let response = Response::decode(&body)?;
        if let Response::Error(message) = response {
            return Err(ClientError::Remote(message));
        }
        Ok(response)
    }

    /// `LIST`: the archive/field metadata JSON document.
    pub fn list(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::List)? {
            Response::List(json) => Ok(json),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `STATS`: the counters JSON document.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `METRICS`: the registry in Prometheus text exposition format — the same
    /// document the HTTP sidecar serves on `GET /metrics`, fetched over the daemon
    /// protocol so `hfz stats --prom` works without a sidecar bound.
    pub fn metrics_prom(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `GET`: (a range of) a decoded field.
    pub fn get(
        &mut self,
        archive: &str,
        field: u32,
        kind: GetKind,
        range: Option<(u64, u64)>,
    ) -> Result<GetResult, ClientError> {
        let request = Request::Get {
            archive: archive.to_string(),
            field,
            kind,
            range,
        };
        match self.request(&request)? {
            Response::Get {
                kind,
                from_cache,
                partial,
                elements,
                bytes,
            } => Ok(GetResult {
                kind,
                from_cache,
                partial,
                elements,
                bytes,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `GETBATCH`: fetches several whole decoded fields of one archive in a single
    /// round trip; the daemon decodes every cache miss as one batched wave. Items come
    /// back in the order `fields` named them.
    pub fn get_batch(
        &mut self,
        archive: &str,
        kind: GetKind,
        fields: &[u32],
    ) -> Result<Vec<BatchGetItem>, ClientError> {
        let request = Request::GetBatch {
            archive: archive.to_string(),
            kind,
            fields: fields.to_vec(),
        };
        match self.request(&request)? {
            Response::GetBatch { items, .. } => Ok(items),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `LOAD`: loads an archive file on the daemon; returns its field count.
    pub fn load(&mut self, name: &str, path: &str) -> Result<u32, ClientError> {
        let request = Request::Load {
            name: name.to_string(),
            path: path.to_string(),
        };
        match self.request(&request)? {
            Response::Loaded { fields } => Ok(fields),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `VERIFY`: decodes every field of an archive on the daemon and checks digests.
    /// Returns the report; `Ok` does not imply the digests matched — check the report
    /// (the last line counts failures).
    pub fn verify(&mut self, archive: &str) -> Result<String, ClientError> {
        let request = Request::Verify {
            archive: archive.to_string(),
        };
        match self.request(&request)? {
            Response::Verify(report) => Ok(report),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `SHUTDOWN`: stops the daemon.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }
}
