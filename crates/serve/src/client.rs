//! Client side of the `hfzd` protocol: one connection, synchronous request/response.
//!
//! Used by the `hfz` remote subcommands (`get`, `list`, `stats`, `load`, `shutdown`,
//! `verify --addr`), the CI smoke job, and the concurrency tests — each test thread
//! holds its own [`Client`]. Long-lived links (the `hfzr` router's shard connections)
//! wrap a [`PooledClient`] instead: it re-dials and retries once when a previously
//! working connection turns out to be dead, so one daemon restart does not poison the
//! link forever.

use crate::net::{connect, Conn, ListenAddr};
use crate::protocol::{
    read_frame, write_frame, BatchGetItem, GetKind, ProtocolError, Request, Response,
    MAX_REQUEST_BYTES, MAX_RESPONSE_BYTES,
};

/// Everything a request can fail with on the client side.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Protocol(ProtocolError),
    /// The daemon answered with an error message.
    Remote(String),
    /// The daemon answered with a response of the wrong shape.
    UnexpectedResponse,
}

impl ClientError {
    /// True when the failure means the *connection* died (broken pipe, reset, EOF
    /// before the response) or could not be made at all (refused — the peer is gone),
    /// rather than the request being bad. Disconnects are the retryable class: the
    /// peer may have restarted, so re-dialing can succeed where the poisoned
    /// connection cannot — and for the router they are the mark-the-shard-down
    /// signal. Remote errors and malformed responses are not retryable — the daemon
    /// answered, it just did not like the request.
    pub fn is_disconnect(&self) -> bool {
        match self {
            ClientError::Protocol(ProtocolError::Io(e)) => matches!(
                e.kind(),
                std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::NotConnected
            ),
            ClientError::Protocol(ProtocolError::Malformed(reason)) => {
                *reason == EOF_BEFORE_RESPONSE
            }
            _ => false,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "{}", e),
            ClientError::Remote(message) => write!(f, "daemon error: {}", message),
            ClientError::UnexpectedResponse => write!(f, "daemon sent an unexpected response"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

impl From<ClientError> for huffdec_codec::HfzError {
    /// Every client-side failure — transport, daemon error response, shape mismatch —
    /// is a protocol error to the facade.
    fn from(e: ClientError) -> Self {
        huffdec_codec::HfzError::Protocol(e.to_string())
    }
}

/// The result of a `GET`.
#[derive(Debug, Clone)]
pub struct GetResult {
    /// What the bytes are (data = f32 LE, codes = u16 LE).
    pub kind: GetKind,
    /// Whether the daemon served the bytes from its decoded-field cache.
    pub from_cache: bool,
    /// Whether a partial (range-limited) decode produced them.
    pub partial: bool,
    /// Number of elements returned.
    pub elements: u64,
    /// The raw bytes.
    pub bytes: Vec<u8>,
}

impl GetResult {
    /// Decodes the payload as little-endian f32s (data requests).
    pub fn as_f32(&self) -> Vec<f32> {
        self.bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect()
    }

    /// Decodes the payload as little-endian u16s (code requests).
    pub fn as_u16(&self) -> Vec<u16> {
        self.bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes(c.try_into().expect("2-byte chunk")))
            .collect()
    }
}

/// The `Malformed` reason [`Client::request`] reports when the daemon hangs up before
/// answering — kept as one constant so [`ClientError::is_disconnect`] can recognize it.
const EOF_BEFORE_RESPONSE: &str = "connection closed before the response";

/// One connection to a daemon.
pub struct Client {
    addr: ListenAddr,
    conn: Conn,
}

impl Client {
    /// Dials the daemon at `addr`.
    pub fn connect(addr: &ListenAddr) -> Result<Client, ClientError> {
        Ok(Client {
            addr: addr.clone(),
            conn: connect(addr)?,
        })
    }

    /// The address this client dialed.
    pub fn addr(&self) -> &ListenAddr {
        &self.addr
    }

    /// Drops the current connection and dials the same address again. The broken-pipe
    /// recovery path: after a daemon restart the old socket is dead, but the address
    /// still serves.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        self.conn = connect(&self.addr)?;
        Ok(())
    }

    /// Sends one request and reads one response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.conn, &request.encode(), MAX_REQUEST_BYTES)?;
        let body = read_frame(&mut self.conn, MAX_RESPONSE_BYTES)?.ok_or(ClientError::Protocol(
            ProtocolError::Malformed(EOF_BEFORE_RESPONSE),
        ))?;
        let response = Response::decode(&body)?;
        if let Response::Error(message) = response {
            return Err(ClientError::Remote(message));
        }
        Ok(response)
    }

    /// `LIST`: the archive/field metadata JSON document.
    pub fn list(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::List)? {
            Response::List(json) => Ok(json),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `STATS`: the counters JSON document.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `METRICS`: the registry in Prometheus text exposition format — the same
    /// document the HTTP sidecar serves on `GET /metrics`, fetched over the daemon
    /// protocol so `hfz stats --prom` works without a sidecar bound.
    pub fn metrics_prom(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `GET`: (a range of) a decoded field.
    pub fn get(
        &mut self,
        archive: &str,
        field: u32,
        kind: GetKind,
        range: Option<(u64, u64)>,
    ) -> Result<GetResult, ClientError> {
        let request = Request::Get {
            archive: archive.to_string(),
            field,
            kind,
            range,
        };
        match self.request(&request)? {
            Response::Get {
                kind,
                from_cache,
                partial,
                elements,
                bytes,
            } => Ok(GetResult {
                kind,
                from_cache,
                partial,
                elements,
                bytes,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `GETBATCH`: fetches several whole decoded fields of one archive in a single
    /// round trip; the daemon decodes every cache miss as one batched wave. Items come
    /// back in the order `fields` named them.
    pub fn get_batch(
        &mut self,
        archive: &str,
        kind: GetKind,
        fields: &[u32],
    ) -> Result<Vec<BatchGetItem>, ClientError> {
        let request = Request::GetBatch {
            archive: archive.to_string(),
            kind,
            fields: fields.to_vec(),
        };
        match self.request(&request)? {
            Response::GetBatch { items, .. } => Ok(items),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `LOAD`: loads an archive file on the daemon; returns its field count.
    pub fn load(&mut self, name: &str, path: &str) -> Result<u32, ClientError> {
        let request = Request::Load {
            name: name.to_string(),
            path: path.to_string(),
        };
        match self.request(&request)? {
            Response::Loaded { fields } => Ok(fields),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `VERIFY`: decodes every field of an archive on the daemon and checks digests.
    /// Returns the report; `Ok` does not imply the digests matched — check the report
    /// (the last line counts failures).
    pub fn verify(&mut self, archive: &str) -> Result<String, ClientError> {
        let request = Request::Verify {
            archive: archive.to_string(),
        };
        match self.request(&request)? {
            Response::Verify(report) => Ok(report),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// `SHUTDOWN`: stops the daemon.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }
}

/// A reconnecting wrapper around [`Client`] for long-lived links.
///
/// A plain [`Client`] is poisoned by one daemon restart: the kept socket EOFs and every
/// later request fails. `PooledClient` keeps the *address* authoritative instead of the
/// socket — it dials lazily, and when a request on a **reused** connection fails with a
/// disconnect ([`ClientError::is_disconnect`]) it re-dials once and retries that one
/// request. A failure on a freshly dialed connection is reported as-is (the daemon is
/// actually gone), so callers like the router see at most one retry per request.
pub struct PooledClient {
    addr: ListenAddr,
    client: Option<Client>,
}

impl PooledClient {
    /// Creates a pool for `addr` without dialing; the first request connects.
    pub fn new(addr: ListenAddr) -> PooledClient {
        PooledClient { addr, client: None }
    }

    /// The address requests are sent to.
    pub fn addr(&self) -> &ListenAddr {
        &self.addr
    }

    /// True when a connection is currently held (it may still be dead on the wire;
    /// the next request finds out).
    pub fn is_connected(&self) -> bool {
        self.client.is_some()
    }

    /// Drops the held connection, forcing the next request to dial fresh.
    pub fn disconnect(&mut self) {
        self.client = None;
    }

    /// Sends one request, transparently re-dialing once if a reused connection turns
    /// out to be dead. All daemon requests are idempotent (`LOAD` included — loading
    /// the same path again replaces the entry), so the single retry is safe.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let reused = self.client.is_some();
        let client = match &mut self.client {
            Some(client) => client,
            None => self.client.insert(Client::connect(&self.addr)?),
        };
        match client.request(request) {
            Err(e) if reused && e.is_disconnect() => {
                // The kept socket died since the last request (daemon restart, idle
                // timeout, …). Re-dial and retry exactly once.
                self.client = None;
                let client = self.client.insert(Client::connect(&self.addr)?);
                client.request(request)
            }
            other => {
                if other
                    .as_ref()
                    .err()
                    .map(ClientError::is_disconnect)
                    .unwrap_or(false)
                {
                    // Fresh dial, dead anyway: drop the socket so the next attempt
                    // re-dials instead of reusing a half-broken connection.
                    self.client = None;
                }
                other
            }
        }
    }

    /// Typed `GET` through the pool (see [`Client::get`]).
    pub fn get(
        &mut self,
        archive: &str,
        field: u32,
        kind: GetKind,
        range: Option<(u64, u64)>,
    ) -> Result<GetResult, ClientError> {
        let request = Request::Get {
            archive: archive.to_string(),
            field,
            kind,
            range,
        };
        match self.request(&request)? {
            Response::Get {
                kind,
                from_cache,
                partial,
                elements,
                bytes,
            } => Ok(GetResult {
                kind,
                from_cache,
                partial,
                elements,
                bytes,
            }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Typed `LOAD` through the pool (see [`Client::load`]).
    pub fn load(&mut self, name: &str, path: &str) -> Result<u32, ClientError> {
        let request = Request::Load {
            name: name.to_string(),
            path: path.to_string(),
        };
        match self.request(&request)? {
            Response::Loaded { fields } => Ok(fields),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }
}
