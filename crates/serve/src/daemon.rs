//! Daemon entry point shared by the `hfzd` binary and `hfz serve`.
//!
//! ```text
//! hfzd --listen tcp:127.0.0.1:4806 --cache-bytes 268435456 --load hacc=/data/hacc.hfz
//! ```
//!
//! Flags:
//! * `--listen ADDR` — `tcp:HOST:PORT` (port 0 = ephemeral, resolved address printed)
//!   or `unix:PATH`; default `tcp:127.0.0.1:4806`;
//! * `--cache-bytes N` — decoded-field LRU budget; default 256 MiB;
//! * `--load NAME=PATH` — preload an archive file (repeatable); more can be loaded at
//!   runtime via the `LOAD` command (`hfz load`);
//! * `--host-threads N` — host threads backing the simulated device;
//! * `--backend sim|cpu` — execution backend requests decode on (default: the
//!   `HFZ_BACKEND` environment variable, falling back to the simulated device);
//! * `--metrics ADDR` — bind an HTTP observability sidecar on `ADDR` serving
//!   `GET /metrics` (Prometheus text exposition) and `GET /healthz`.
//!
//! The daemon prints one `listening on <addr>` line once it is accepting (the smoke
//! jobs and tests wait for it), then serves until a `SHUTDOWN` request. With
//! `--metrics`, a `metrics on <addr>` line is printed *before* it, so anything that
//! waited for `listening on` can already scrape.

use gpu_sim::GpuConfig;
use huffdec_backend::BackendKind;
use huffdec_codec::HfzError;

use crate::http::MetricsServer;
use crate::net::ListenAddr;
use crate::server::{Server, ServerConfig};

/// Default listen address when `--listen` is absent.
pub const DEFAULT_LISTEN: &str = "tcp:127.0.0.1:4806";

/// Default decoded-field cache budget (256 MiB).
pub const DEFAULT_CACHE_BYTES: u64 = 256 << 20;

/// Parsed daemon options.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Where to listen.
    pub listen: ListenAddr,
    /// Cache budget in bytes.
    pub cache_bytes: u64,
    /// `(name, path)` archives to preload.
    pub preload: Vec<(String, String)>,
    /// Host threads for the simulated device.
    pub host_threads: usize,
    /// Execution backend requests decode on.
    pub backend: BackendKind,
    /// Where to bind the HTTP metrics/health sidecar, when requested.
    pub metrics: Option<ListenAddr>,
}

impl DaemonOptions {
    /// Parses `--listen/--cache-bytes/--load/--host-threads/--backend/--metrics` flags.
    pub fn parse(args: &[String]) -> Result<DaemonOptions, String> {
        let mut listen = ListenAddr::parse(DEFAULT_LISTEN).expect("default parses");
        let mut cache_bytes = DEFAULT_CACHE_BYTES;
        let mut preload = Vec::new();
        let mut metrics = None;
        let mut backend = BackendKind::from_env();
        let mut host_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {} expects a value", name))
            };
            match arg.as_str() {
                "--listen" => listen = ListenAddr::parse(&value("--listen")?)?,
                "--metrics" => metrics = Some(ListenAddr::parse(&value("--metrics")?)?),
                "--cache-bytes" => {
                    cache_bytes = value("--cache-bytes")?
                        .parse()
                        .map_err(|_| "bad --cache-bytes value".to_string())?
                }
                "--backend" => {
                    let name = value("--backend")?;
                    backend = name
                        .parse()
                        .map_err(|_| format!("--backend '{}' is not sim|cpu", name))?;
                }
                "--host-threads" => {
                    host_threads = value("--host-threads")?
                        .parse()
                        .map_err(|_| "bad --host-threads value".to_string())?;
                    if host_threads == 0 {
                        return Err("--host-threads must be positive".to_string());
                    }
                }
                "--load" => {
                    let spec = value("--load")?;
                    let (name, path) = spec
                        .split_once('=')
                        .ok_or_else(|| format!("--load '{}' is not NAME=PATH", spec))?;
                    if name.is_empty() || path.is_empty() {
                        return Err("--load needs a non-empty NAME=PATH".to_string());
                    }
                    preload.push((name.to_string(), path.to_string()));
                }
                other => return Err(format!("unknown daemon flag '{}'", other)),
            }
        }
        Ok(DaemonOptions {
            listen,
            cache_bytes,
            preload,
            host_threads,
            backend,
            metrics,
        })
    }
}

/// Binds, preloads, prints the `listening on` line, and serves until shutdown.
///
/// Failures keep their class through [`HfzError`] — a bind failure is I/O, an
/// unreadable preload is I/O, a corrupt preload is a container error — so both
/// entry points (`hfzd` and `hfz serve`) exit with the same stable codes.
pub fn run(options: &DaemonOptions) -> Result<(), HfzError> {
    let config = ServerConfig {
        cache_bytes: options.cache_bytes,
        gpu: GpuConfig::v100(),
        backend: options.backend,
        host_threads: options.host_threads,
    };
    let server = Server::bind(&options.listen, &config)
        .map_err(|e| HfzError::io(format!("cannot bind {}", options.listen), e))?;
    let state = server.state();
    for (name, path) in &options.preload {
        let loaded = state.load_archive(name, path).map_err(|e| match e {
            HfzError::Io { context, source } => HfzError::Io {
                context: format!("cannot load '{}': {}", name, context),
                source,
            },
            other => other,
        })?;
        eprintln!(
            "hfzd: loaded '{}' from {} ({} fields)",
            name,
            path,
            loaded.fields().len()
        );
    }
    // The sidecar binds (and its address is registered with the state) before the
    // `listening on` line below, so anything that waited for it can already scrape.
    let metrics_thread = match &options.metrics {
        Some(addr) => {
            let sidecar = MetricsServer::bind(addr, std::sync::Arc::clone(&state))
                .map_err(|e| HfzError::io(format!("cannot bind metrics sidecar {}", addr), e))?;
            let bound = sidecar
                .local_addr()
                .map_err(|e| HfzError::io("metrics sidecar address", e))?;
            {
                use std::io::Write as _;
                let mut out = std::io::stdout();
                let _ = writeln!(out, "hfzd: metrics on {}", bound);
                let _ = out.flush();
            }
            Some(std::thread::spawn(move || sidecar.run()))
        }
        None => None,
    };
    // Printed on stdout and flushed: start-up scripts wait for this line.
    {
        use std::io::Write as _;
        let mut out = std::io::stdout();
        let _ = writeln!(
            out,
            "hfzd: listening on {} (cache budget {} bytes)",
            server.local_addr(),
            options.cache_bytes
        );
        let _ = out.flush();
    }
    let result = server.run().map_err(|e| HfzError::io("server failed", e));
    if let Some(handle) = metrics_thread {
        // `SHUTDOWN` pokes the sidecar's accept loop too; join so its socket is gone
        // before the entry point reports the daemon stopped.
        let _ = handle.join();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_all_flags() {
        let opts = DaemonOptions::parse(&s(&[
            "--listen",
            "tcp:127.0.0.1:9000",
            "--cache-bytes",
            "1024",
            "--load",
            "a=/tmp/a.hfz",
            "--load",
            "b=/tmp/b.hfz",
            "--host-threads",
            "3",
            "--backend",
            "cpu",
            "--metrics",
            "tcp:127.0.0.1:9100",
        ]))
        .unwrap();
        assert_eq!(opts.listen, ListenAddr::Tcp("127.0.0.1:9000".into()));
        assert_eq!(opts.cache_bytes, 1024);
        assert_eq!(opts.host_threads, 3);
        assert_eq!(opts.backend, BackendKind::Cpu);
        assert_eq!(opts.metrics, Some(ListenAddr::Tcp("127.0.0.1:9100".into())));
        assert_eq!(
            opts.preload,
            vec![
                ("a".to_string(), "/tmp/a.hfz".to_string()),
                ("b".to_string(), "/tmp/b.hfz".to_string())
            ]
        );
    }

    #[test]
    fn defaults_and_bad_flags() {
        let opts = DaemonOptions::parse(&[]).unwrap();
        assert_eq!(opts.cache_bytes, DEFAULT_CACHE_BYTES);
        assert_eq!(opts.listen, ListenAddr::parse(DEFAULT_LISTEN).unwrap());
        assert_eq!(opts.metrics, None);
        assert!(DaemonOptions::parse(&s(&["--metrics"])).is_err());
        assert!(DaemonOptions::parse(&s(&["--load", "nopath"])).is_err());
        assert!(DaemonOptions::parse(&s(&["--cache-bytes", "x"])).is_err());
        assert!(DaemonOptions::parse(&s(&["--host-threads", "0"])).is_err());
        assert!(DaemonOptions::parse(&s(&["--backend", "cuda"])).is_err());
        assert!(DaemonOptions::parse(&s(&["--backend"])).is_err());
        assert!(DaemonOptions::parse(&s(&["--bogus"])).is_err());
        assert!(DaemonOptions::parse(&s(&["--listen"])).is_err());
    }
}
