//! Daemon entry point shared by the `hfzd` binary and `hfz serve`, and the spawnable
//! [`Daemon`] builder API for embedding a daemon in-process.
//!
//! ```text
//! hfzd --listen tcp:127.0.0.1:4806 --cache-bytes 268435456 --load hacc=/data/hacc.hfz
//! ```
//!
//! Flags:
//! * `--listen ADDR` — `tcp:HOST:PORT` (port 0 = ephemeral, resolved address printed)
//!   or `unix:PATH`; default `tcp:127.0.0.1:4806`;
//! * `--cache-bytes N` — decoded-field LRU budget; default 256 MiB;
//! * `--load NAME=PATH` — preload an archive file (repeatable); more can be loaded at
//!   runtime via the `LOAD` command (`hfz load`);
//! * `--host-threads N` — host threads backing the simulated device;
//! * `--backend sim|cpu` — execution backend requests decode on (default: the
//!   `HFZ_BACKEND` environment variable, falling back to the simulated device);
//! * `--metrics ADDR` — bind an HTTP observability sidecar on `ADDR` serving
//!   `GET /metrics` (Prometheus text exposition) and `GET /healthz`;
//! * `--addr-file PATH` — write the resolved listen address to `PATH` (atomically:
//!   temp file + rename) once the daemon is accepting. This is how scripts and
//!   supervisors learn an ephemeral port without scraping stdout.
//!
//! The daemon prints one `listening on <addr>` line once it is accepting, then serves
//! until a `SHUTDOWN` request. With `--metrics`, a `metrics on <addr>` line is printed
//! *before* it, so anything that waited for `listening on` can already scrape.
//!
//! ## Embedding
//!
//! In-process consumers (tests, the router's test fleets, anything that wants a
//! daemon without a child process) use the builder instead of the blocking entry
//! point:
//!
//! ```no_run
//! use huffdec_serve::daemon::Daemon;
//! use huffdec_serve::net::ListenAddr;
//!
//! let handle = Daemon::builder()
//!     .listen(ListenAddr::parse("tcp:127.0.0.1:0").unwrap())
//!     .cache_bytes(64 << 20)
//!     .spawn()
//!     .unwrap();
//! println!("serving on {}", handle.local_addr());
//! handle.shutdown();
//! handle.join().unwrap();
//! ```

use std::path::PathBuf;
use std::time::Duration;

use gpu_sim::GpuConfig;
use huffdec_backend::BackendKind;
use huffdec_codec::HfzError;

use crate::http::MetricsServer;
use crate::net::ListenAddr;
use crate::server::{Server, ServerConfig, ServerState};

/// Default listen address when `--listen` is absent.
pub const DEFAULT_LISTEN: &str = "tcp:127.0.0.1:4806";

/// Default decoded-field cache budget (256 MiB).
pub const DEFAULT_CACHE_BYTES: u64 = 256 << 20;

/// Parsed daemon options.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Where to listen.
    pub listen: ListenAddr,
    /// Cache budget in bytes.
    pub cache_bytes: u64,
    /// `(name, path)` archives to preload.
    pub preload: Vec<(String, String)>,
    /// Host threads for the simulated device.
    pub host_threads: usize,
    /// Execution backend requests decode on.
    pub backend: BackendKind,
    /// Where to bind the HTTP metrics/health sidecar, when requested.
    pub metrics: Option<ListenAddr>,
    /// Where to write the resolved listen address, when requested.
    pub addr_file: Option<PathBuf>,
}

impl DaemonOptions {
    /// Parses `--listen/--cache-bytes/--load/--host-threads/--backend/--metrics/
    /// --addr-file` flags.
    pub fn parse(args: &[String]) -> Result<DaemonOptions, String> {
        let mut listen = ListenAddr::parse(DEFAULT_LISTEN).expect("default parses");
        let mut cache_bytes = DEFAULT_CACHE_BYTES;
        let mut preload = Vec::new();
        let mut metrics = None;
        let mut addr_file = None;
        let mut backend = BackendKind::from_env();
        let mut host_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {} expects a value", name))
            };
            match arg.as_str() {
                "--listen" => listen = ListenAddr::parse(&value("--listen")?)?,
                "--metrics" => metrics = Some(ListenAddr::parse(&value("--metrics")?)?),
                "--addr-file" => addr_file = Some(PathBuf::from(value("--addr-file")?)),
                "--cache-bytes" => {
                    cache_bytes = value("--cache-bytes")?
                        .parse()
                        .map_err(|_| "bad --cache-bytes value".to_string())?
                }
                "--backend" => {
                    let name = value("--backend")?;
                    backend = name
                        .parse()
                        .map_err(|_| format!("--backend '{}' is not sim|cpu", name))?;
                }
                "--host-threads" => {
                    host_threads = value("--host-threads")?
                        .parse()
                        .map_err(|_| "bad --host-threads value".to_string())?;
                    if host_threads == 0 {
                        return Err("--host-threads must be positive".to_string());
                    }
                }
                "--load" => {
                    let spec = value("--load")?;
                    let (name, path) = spec
                        .split_once('=')
                        .ok_or_else(|| format!("--load '{}' is not NAME=PATH", spec))?;
                    if name.is_empty() || path.is_empty() {
                        return Err("--load needs a non-empty NAME=PATH".to_string());
                    }
                    preload.push((name.to_string(), path.to_string()));
                }
                other => return Err(format!("unknown daemon flag '{}'", other)),
            }
        }
        Ok(DaemonOptions {
            listen,
            cache_bytes,
            preload,
            host_threads,
            backend,
            metrics,
            addr_file,
        })
    }
}

/// Namespace for [`Daemon::builder`].
#[derive(Debug)]
pub struct Daemon;

impl Daemon {
    /// Starts configuring an in-process daemon. See [`DaemonBuilder`].
    pub fn builder() -> DaemonBuilder {
        DaemonBuilder::default()
    }
}

/// Configures and spawns an in-process daemon; [`DaemonBuilder::spawn`] returns a
/// [`ServerHandle`].
///
/// Everything the CLI flags express is available programmatically, plus the scheduler
/// knobs ([`DaemonBuilder::queue_bound`], [`DaemonBuilder::wave_tick`]) the
/// contention tests and benches pin down.
#[derive(Debug, Clone)]
pub struct DaemonBuilder {
    listen: ListenAddr,
    cache_bytes: u64,
    preload: Vec<(String, String)>,
    host_threads: usize,
    backend: BackendKind,
    metrics: Option<ListenAddr>,
    addr_file: Option<PathBuf>,
    queue_bound: usize,
    wave_tick: Duration,
}

impl Default for DaemonBuilder {
    fn default() -> Self {
        let defaults = ServerConfig::default();
        DaemonBuilder {
            listen: ListenAddr::parse(DEFAULT_LISTEN).expect("default parses"),
            cache_bytes: DEFAULT_CACHE_BYTES,
            preload: Vec::new(),
            host_threads: defaults.host_threads,
            backend: defaults.backend,
            metrics: None,
            addr_file: None,
            queue_bound: defaults.queue_bound,
            wave_tick: defaults.wave_tick,
        }
    }
}

impl DaemonBuilder {
    /// A builder carrying everything a parsed flag set expresses.
    pub fn from_options(options: &DaemonOptions) -> DaemonBuilder {
        let mut builder = Daemon::builder()
            .listen(options.listen.clone())
            .cache_bytes(options.cache_bytes)
            .backend(options.backend)
            .host_threads(options.host_threads);
        for (name, path) in &options.preload {
            builder = builder.preload(name, path);
        }
        if let Some(addr) = &options.metrics {
            builder = builder.metrics(addr.clone());
        }
        if let Some(path) = &options.addr_file {
            builder = builder.addr_file(path.clone());
        }
        builder
    }

    /// Where to listen (default `tcp:127.0.0.1:4806`; use port 0 for ephemeral).
    pub fn listen(mut self, addr: ListenAddr) -> Self {
        self.listen = addr;
        self
    }

    /// Decoded-field LRU budget in bytes (default 256 MiB).
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Execution backend requests decode on.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Host threads backing the simulated device.
    pub fn host_threads(mut self, threads: usize) -> Self {
        self.host_threads = threads;
        self
    }

    /// Preloads an archive before the daemon starts serving (repeatable). A preload
    /// failure surfaces from [`DaemonBuilder::spawn`], before any thread starts.
    pub fn preload(mut self, name: &str, path: &str) -> Self {
        self.preload.push((name.to_string(), path.to_string()));
        self
    }

    /// Binds the HTTP metrics/health sidecar on `addr`.
    pub fn metrics(mut self, addr: ListenAddr) -> Self {
        self.metrics = Some(addr);
        self
    }

    /// Writes the resolved listen address to `path` (atomically) once bound.
    pub fn addr_file(mut self, path: PathBuf) -> Self {
        self.addr_file = Some(path);
        self
    }

    /// Admission bound on not-yet-started decodes (the `BUSY` threshold).
    pub fn queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = bound;
        self
    }

    /// How long the wave worker holds a decode wave open for merging.
    pub fn wave_tick(mut self, tick: Duration) -> Self {
        self.wave_tick = tick;
        self
    }

    /// Binds, preloads, writes the addr-file, and spawns the serving threads.
    ///
    /// Everything that can fail does so *here*, synchronously, with its class kept
    /// through [`HfzError`] — a bind failure is I/O, an unreadable preload is I/O, a
    /// corrupt preload is a container error — so both entry points (`hfzd` and
    /// `hfz serve`) exit with the same stable codes, and embedders never have to fish
    /// an error out of a thread.
    pub fn spawn(self) -> Result<ServerHandle, HfzError> {
        let config = ServerConfig {
            cache_bytes: self.cache_bytes,
            gpu: GpuConfig::v100(),
            backend: self.backend,
            host_threads: self.host_threads,
            queue_bound: self.queue_bound,
            wave_tick: self.wave_tick,
        };
        let server = Server::bind(&self.listen, &config)
            .map_err(|e| HfzError::io(format!("cannot bind {}", self.listen), e))?;
        let state = server.state();
        for (name, path) in &self.preload {
            state.load_archive(name, path).map_err(|e| match e {
                HfzError::Io { context, source } => HfzError::Io {
                    context: format!("cannot load '{}': {}", name, context),
                    source,
                },
                other => other,
            })?;
        }
        // The sidecar binds (and its address is registered with the state) before the
        // addr-file is written, so anything that waited on the file can already scrape.
        let mut metrics_addr = None;
        let sidecar = match &self.metrics {
            Some(addr) => {
                let sidecar =
                    MetricsServer::bind(addr, std::sync::Arc::clone(&state)).map_err(|e| {
                        HfzError::io(format!("cannot bind metrics sidecar {}", addr), e)
                    })?;
                let bound = sidecar
                    .local_addr()
                    .map_err(|e| HfzError::io("metrics sidecar address", e))?;
                metrics_addr = Some(bound);
                Some(std::thread::spawn(move || {
                    let _ = sidecar.run();
                }))
            }
            None => None,
        };
        let addr = server.local_addr();
        if let Some(path) = &self.addr_file {
            write_addr_file(path, &addr)
                .map_err(|e| HfzError::io(format!("cannot write {}", path.display()), e))?;
        }
        let server_thread = std::thread::spawn(move || server.run());
        Ok(ServerHandle {
            state,
            addr,
            metrics_addr,
            server: Some(server_thread),
            sidecar,
        })
    }
}

/// Writes `addr` to `path` atomically (sibling temp file + rename), so a reader
/// polling the file never observes a partial address.
fn write_addr_file(path: &std::path::Path, addr: &ListenAddr) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, format!("{}\n", addr))?;
    std::fs::rename(&tmp, path)
}

/// A running in-process daemon: the serving threads, their shared state, and the
/// resolved addresses.
///
/// Dropping the handle *detaches* the daemon (the threads keep serving); stopping it
/// is explicit — [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    state: std::sync::Arc<ServerState>,
    addr: ListenAddr,
    metrics_addr: Option<ListenAddr>,
    server: Option<std::thread::JoinHandle<std::io::Result<()>>>,
    sidecar: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The resolved listen address (for `tcp:...:0` it carries the actual port).
    pub fn local_addr(&self) -> &ListenAddr {
        &self.addr
    }

    /// The metrics sidecar's resolved address, when one was bound.
    pub fn metrics_addr(&self) -> Option<&ListenAddr> {
        self.metrics_addr.as_ref()
    }

    /// Handle to the shared state (for in-process loading, stats, and tests).
    pub fn state(&self) -> std::sync::Arc<ServerState> {
        std::sync::Arc::clone(&self.state)
    }

    /// Requests shutdown (idempotent; does not wait — follow with
    /// [`ServerHandle::join`]).
    pub fn shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Waits for the serving threads to exit (after a [`ServerHandle::shutdown`] or a
    /// client's `SHUTDOWN` request).
    pub fn join(mut self) -> Result<(), HfzError> {
        if let Some(server) = self.server.take() {
            let result = server
                .join()
                .map_err(|_| HfzError::Protocol("server thread panicked".to_string()))?;
            result.map_err(|e| HfzError::io("server failed", e))?;
        }
        if let Some(sidecar) = self.sidecar.take() {
            // `SHUTDOWN` pokes the sidecar's accept loop too; join so its socket is
            // gone before the entry point reports the daemon stopped.
            let _ = sidecar.join();
        }
        Ok(())
    }
}

/// The blocking entry point `hfzd` and `hfz serve` wrap: spawns via the builder,
/// prints the start-up lines, and waits until shutdown.
pub fn run_foreground(options: &DaemonOptions) -> Result<(), HfzError> {
    let handle = DaemonBuilder::from_options(options).spawn()?;
    for loaded in handle.state().store().list().iter() {
        eprintln!(
            "hfzd: loaded '{}' from {} ({} fields)",
            loaded.name,
            loaded.path,
            loaded.fields().len()
        );
    }
    use std::io::Write as _;
    if let Some(addr) = handle.metrics_addr() {
        let mut out = std::io::stdout();
        let _ = writeln!(out, "hfzd: metrics on {}", addr);
        let _ = out.flush();
    }
    // Printed on stdout and flushed: start-up scripts wait for this line (scripts
    // that need the address itself should prefer `--addr-file`).
    {
        let mut out = std::io::stdout();
        let _ = writeln!(
            out,
            "hfzd: listening on {} (cache budget {} bytes)",
            handle.local_addr(),
            options.cache_bytes
        );
        let _ = out.flush();
    }
    handle.join()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_all_flags() {
        let opts = DaemonOptions::parse(&s(&[
            "--listen",
            "tcp:127.0.0.1:9000",
            "--cache-bytes",
            "1024",
            "--load",
            "a=/tmp/a.hfz",
            "--load",
            "b=/tmp/b.hfz",
            "--host-threads",
            "3",
            "--backend",
            "cpu",
            "--metrics",
            "tcp:127.0.0.1:9100",
            "--addr-file",
            "/tmp/hfzd.addr",
        ]))
        .unwrap();
        assert_eq!(opts.listen, ListenAddr::Tcp("127.0.0.1:9000".into()));
        assert_eq!(opts.cache_bytes, 1024);
        assert_eq!(opts.host_threads, 3);
        assert_eq!(opts.backend, BackendKind::Cpu);
        assert_eq!(opts.metrics, Some(ListenAddr::Tcp("127.0.0.1:9100".into())));
        assert_eq!(opts.addr_file, Some(PathBuf::from("/tmp/hfzd.addr")));
        assert_eq!(
            opts.preload,
            vec![
                ("a".to_string(), "/tmp/a.hfz".to_string()),
                ("b".to_string(), "/tmp/b.hfz".to_string())
            ]
        );
    }

    #[test]
    fn defaults_and_bad_flags() {
        let opts = DaemonOptions::parse(&[]).unwrap();
        assert_eq!(opts.cache_bytes, DEFAULT_CACHE_BYTES);
        assert_eq!(opts.listen, ListenAddr::parse(DEFAULT_LISTEN).unwrap());
        assert_eq!(opts.metrics, None);
        assert_eq!(opts.addr_file, None);
        assert!(DaemonOptions::parse(&s(&["--metrics"])).is_err());
        assert!(DaemonOptions::parse(&s(&["--addr-file"])).is_err());
        assert!(DaemonOptions::parse(&s(&["--load", "nopath"])).is_err());
        assert!(DaemonOptions::parse(&s(&["--cache-bytes", "x"])).is_err());
        assert!(DaemonOptions::parse(&s(&["--host-threads", "0"])).is_err());
        assert!(DaemonOptions::parse(&s(&["--backend", "cuda"])).is_err());
        assert!(DaemonOptions::parse(&s(&["--backend"])).is_err());
        assert!(DaemonOptions::parse(&s(&["--bogus"])).is_err());
        assert!(DaemonOptions::parse(&s(&["--listen"])).is_err());
    }

    #[test]
    fn addr_file_is_written_atomically_on_spawn() {
        let dir = std::env::temp_dir().join(format!("hfzd-addrfile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let addr_file = dir.join("daemon.addr");
        let handle = Daemon::builder()
            .listen(ListenAddr::parse("tcp:127.0.0.1:0").unwrap())
            .cache_bytes(1 << 20)
            .addr_file(addr_file.clone())
            .spawn()
            .unwrap();
        let written = std::fs::read_to_string(&addr_file).unwrap();
        assert_eq!(written.trim(), handle.local_addr().to_string());
        // The advertised address is dialable, and shutdown/join tears everything down.
        let parsed = ListenAddr::parse(written.trim()).unwrap();
        assert_eq!(&parsed, handle.local_addr());
        handle.shutdown();
        handle.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
