//! The observability sidecar: a minimal HTTP/1.1 listener for scrapers.
//!
//! `hfzd --metrics tcp:HOST:PORT` binds a second listener next to the request socket
//! and serves exactly two read-only endpoints:
//!
//! * `GET /metrics` — the daemon's [`Metrics`](huffdec_codec::Metrics) registry in
//!   Prometheus text exposition format (version 0.0.4);
//! * `GET /healthz` — `healthy` / `degraded: …` (both `200 OK`) or `unhealthy: …`
//!   (`503 Service Unavailable`), computed by [`ServerState::health`].
//!
//! The implementation is deliberately tiny — dependency-free, thread-per-connection,
//! `Connection: close` — because a scrape every few seconds is all the traffic it will
//! ever see. It is **not** a general HTTP server: request heads are capped at 8 KiB,
//! bodies are ignored, and only `GET` is answered.

use std::io::{Read, Write};
use std::sync::Arc;
use std::thread;

use crate::net::{Conn, ListenAddr, Listener};
use crate::server::{Health, ServerState};

/// Longest request head (request line + headers) the sidecar will read.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// What a component must expose to get the `/metrics` + `/healthz` sidecar.
///
/// The sidecar used to be welded to [`ServerState`]; the router (`hfzr`) serves the
/// same two endpoints over *fleet-wide* documents, so the HTTP plumbing is generic
/// over this trait instead.
pub trait HttpEndpoints: Send + Sync + 'static {
    /// The `/metrics` body: a Prometheus text exposition document.
    fn metrics_text(&self) -> String;
    /// The `/healthz` verdict.
    fn health(&self) -> Health;
    /// True once shutdown has been requested; the accept loop exits on the next
    /// connection (the shutdown path dials once to unblock it).
    fn is_shutting_down(&self) -> bool;
    /// Called once with the resolved bound address (ephemeral ports resolved), so the
    /// owner can record where the sidecar lives and poke it on shutdown.
    fn sidecar_bound(&self, addr: ListenAddr) {
        let _ = addr;
    }
}

impl HttpEndpoints for ServerState {
    fn metrics_text(&self) -> String {
        self.metrics().render_prometheus()
    }

    fn health(&self) -> Health {
        ServerState::health(self)
    }

    fn is_shutting_down(&self) -> bool {
        ServerState::is_shutting_down(self)
    }

    fn sidecar_bound(&self, addr: ListenAddr) {
        self.set_metrics_addr(addr);
    }
}

/// The metrics/health HTTP listener, bound next to a daemon's request socket.
pub struct HttpServer<E: HttpEndpoints> {
    listener: Listener,
    endpoints: Arc<E>,
}

/// The daemon's sidecar: [`HttpServer`] over [`ServerState`].
pub type MetricsServer = HttpServer<ServerState>;

impl<E: HttpEndpoints> HttpServer<E> {
    /// Binds the sidecar on `addr` and reports the resolved address (ephemeral ports
    /// resolved) back through [`HttpEndpoints::sidecar_bound`], so shutdown can poke
    /// the accept loop.
    pub fn bind(addr: &ListenAddr, endpoints: Arc<E>) -> std::io::Result<HttpServer<E>> {
        let listener = Listener::bind(addr)?;
        endpoints.sidecar_bound(listener.local_addr()?);
        Ok(HttpServer {
            listener,
            endpoints,
        })
    }

    /// The bound address, with ephemeral TCP ports resolved.
    pub fn local_addr(&self) -> std::io::Result<ListenAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves scrapes until the owner shuts down. Each connection gets a
    /// short-lived thread; responses always carry `Connection: close`.
    pub fn run(self) -> std::io::Result<()> {
        loop {
            let conn = self.listener.accept()?;
            if self.endpoints.is_shutting_down() {
                // The shutdown path connects once to unblock `accept`; answer that
                // probe (and any racing scrape) with the unhealthy page, then stop.
                let endpoints = Arc::clone(&self.endpoints);
                let _ = serve_connection(conn, &*endpoints);
                return Ok(());
            }
            let endpoints = Arc::clone(&self.endpoints);
            thread::spawn(move || {
                let _ = serve_connection(conn, &*endpoints);
            });
        }
    }
}

impl<E: HttpEndpoints> std::fmt::Debug for HttpServer<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("listener", &self.listener)
            .finish_non_exhaustive()
    }
}

/// Reads one request head and writes one response. Any parse problem is answered with
/// a `400`; I/O errors are returned for the caller to drop.
fn serve_connection<E: HttpEndpoints>(mut conn: Conn, state: &E) -> std::io::Result<()> {
    let head = match read_head(&mut conn) {
        Ok(head) => head,
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            return write_response(&mut conn, 400, "Bad Request", "text/plain", "bad request\n");
        }
        Err(e) => return Err(e),
    };
    let (method, path) = match parse_request_line(&head) {
        Some(parts) => parts,
        None => {
            return write_response(&mut conn, 400, "Bad Request", "text/plain", "bad request\n");
        }
    };
    if method != "GET" {
        return write_response(
            &mut conn,
            405,
            "Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
    }
    match path {
        "/metrics" => write_response(
            &mut conn,
            200,
            "OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &state.metrics_text(),
        ),
        "/healthz" => match state.health() {
            Health::Healthy => write_response(&mut conn, 200, "OK", "text/plain", "healthy\n"),
            Health::Degraded(reason) => write_response(
                &mut conn,
                200,
                "OK",
                "text/plain",
                &format!("degraded: {}\n", reason),
            ),
            Health::Unhealthy(reason) => write_response(
                &mut conn,
                503,
                "Service Unavailable",
                "text/plain",
                &format!("unhealthy: {}\n", reason),
            ),
        },
        _ => write_response(&mut conn, 404, "Not Found", "text/plain", "not found\n"),
    }
}

/// Reads until the `\r\n\r\n` head terminator, bounded by [`MAX_HEAD_BYTES`].
fn read_head(conn: &mut Conn) -> std::io::Result<Vec<u8>> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = conn.read(&mut byte)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "connection closed before request head",
            ));
        }
        head.push(byte[0]);
        if head.ends_with(b"\r\n\r\n") {
            return Ok(head);
        }
        if head.len() >= MAX_HEAD_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
    }
}

/// Extracts `(method, path)` from the request line, dropping any query string.
fn parse_request_line(head: &[u8]) -> Option<(&str, &str)> {
    let head = std::str::from_utf8(head).ok()?;
    let line = head.lines().next()?;
    let mut parts = line.split(' ');
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    let path = target.split('?').next().unwrap_or(target);
    Some((method, path))
}

/// Writes one complete HTTP/1.1 response and flushes it.
fn write_response(
    conn: &mut Conn,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        code,
        reason,
        content_type,
        body.len()
    );
    conn.write_all(head.as_bytes())?;
    conn.write_all(body.as_bytes())?;
    conn.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse_method_and_path() {
        let head = b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
        assert_eq!(parse_request_line(head), Some(("GET", "/metrics")));
        let query = b"GET /healthz?verbose=1 HTTP/1.0\r\n\r\n";
        assert_eq!(parse_request_line(query), Some(("GET", "/healthz")));
        let post = b"POST /metrics HTTP/1.1\r\n\r\n";
        assert_eq!(parse_request_line(post), Some(("POST", "/metrics")));
        assert_eq!(parse_request_line(b"GET /metrics SPDY/3\r\n\r\n"), None);
        assert_eq!(parse_request_line(b"garbage\r\n\r\n"), None);
        assert_eq!(parse_request_line(&[0xff, 0xfe]), None);
    }
}
