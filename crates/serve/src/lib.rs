//! # huffdec-serve — the `hfzd` block-decode daemon
//!
//! The serving layer of the workspace: a long-running daemon that holds `HFZ1` archives
//! *compressed in memory* and serves decoded fields (or ranges of them) to clients over
//! a Unix-domain or TCP socket. This is the paper's §V GAMESS scenario — decompression
//! latency, not compression, is the bottleneck when snapshots live compressed and
//! fields are decoded on demand — built as the cuSZ-style "compression service around
//! the kernel" rather than a one-shot CLI.
//!
//! The crate splits into:
//!
//! * [`protocol`] — the length-prefixed binary request/response format
//!   (`LIST`/`GET`/`STATS`/`VERIFY`/`LOAD`/`SHUTDOWN`);
//! * [`net`] — `tcp:HOST:PORT` / `unix:PATH` transport;
//! * [`store`] — the parse-once archive store: section tables, decode structures, and
//!   lazily built range-decode indexes, all cached per loaded archive;
//! * [`cache`] — the decoded-field LRU: bytes-budgeted, shared across client threads;
//! * [`server`] — the daemon itself: thread-per-connection over one shared state;
//! * [`http`] — the observability sidecar: `GET /metrics` (Prometheus text
//!   exposition) and `GET /healthz` over plain HTTP/1.1;
//! * [`client`] — the synchronous client used by `hfz get` and friends;
//! * [`daemon`] — flag parsing and the run loop shared by `hfzd` and `hfz serve`.
//!
//! ## Request flow
//!
//! A full-field `GET` checks the LRU first; on a miss it decodes on the simulated GPU
//! (outside every lock), inserts, and serves. A *ranged* code request that misses the
//! cache takes the partial path instead: the field's decode index (subsequence states +
//! output-index prefix sums, built once) maps the symbol range to the decode blocks
//! that produce it, and only those blocks are decoded — `Codec::decompress_range`.
//!
//! ## Example
//!
//! ```no_run
//! use huffdec_serve::client::Client;
//! use huffdec_serve::net::ListenAddr;
//! use huffdec_serve::protocol::GetKind;
//!
//! let addr = ListenAddr::parse("tcp:127.0.0.1:4806").unwrap();
//! let mut client = Client::connect(&addr).unwrap();
//! client.load("hacc", "/data/hacc.hfz").unwrap();
//! let field = client.get("hacc", 0, GetKind::Data, None).unwrap();
//! println!("{} elements, cached: {}", field.elements, field.from_cache);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod daemon;
pub mod http;
pub mod net;
pub mod protocol;
pub mod server;
pub mod store;

pub use cache::{CacheKey, CacheStats, DecodedLru};
pub use client::{Client, ClientError, GetResult, PooledClient};
pub use http::{HttpEndpoints, HttpServer, MetricsServer};
pub use huffdec_codec::{
    ArchiveHandle, Backend, BackendKind, Codec, FieldHandle, HfzError, Metrics, MetricsSnapshot,
};
pub use net::{ListenAddr, Listener};
pub use protocol::{GetKind, ProtocolError, Request, Response};
pub use server::{Health, Server, ServerConfig, ServerState};
pub use store::{ArchiveStore, LoadedArchive};
