//! # huffdec-serve — the `hfzd` block-decode daemon
//!
//! The serving layer of the workspace: a long-running daemon that holds `HFZ1` archives
//! *compressed in memory* and serves decoded fields (or ranges of them) to clients over
//! a Unix-domain or TCP socket. This is the paper's §V GAMESS scenario — decompression
//! latency, not compression, is the bottleneck when snapshots live compressed and
//! fields are decoded on demand — built as the cuSZ-style "compression service around
//! the kernel" rather than a one-shot CLI.
//!
//! The crate splits into:
//!
//! * [`protocol`] — the length-prefixed binary request/response format
//!   (`LIST`/`GET`/`STATS`/`VERIFY`/`LOAD`/`SHUTDOWN`, plus the `BUSY` overload reply);
//! * [`net`] — `tcp:HOST:PORT` / `unix:PATH` transport;
//! * [`store`] — the parse-once archive store: section tables, decode structures, and
//!   lazily built range-decode indexes, all cached per loaded archive;
//! * [`cache`] — the decoded-field LRU: bytes-budgeted, shared across requests;
//! * [`server`] — the daemon itself: an event-loop reactor over one shared state,
//!   with a single-flight/wave scheduler feeding one decode-worker thread;
//! * [`http`] — the observability sidecar: `GET /metrics` (Prometheus text
//!   exposition) and `GET /healthz` over plain HTTP/1.1;
//! * [`client`] — the synchronous [`Connection`] used by `hfz get`, the router's
//!   shard links, and friends;
//! * [`daemon`] — flag parsing, the spawnable [`Daemon`] builder API, and the
//!   blocking foreground loop shared by `hfzd` and `hfz serve`.
//!
//! ## Request flow
//!
//! A full-field `GET` checks the LRU first. On a miss it becomes a *decode future*:
//! the reactor submits it to the scheduler and keeps serving other traffic. Concurrent
//! misses of the same field coalesce into one decode (single-flight) whose result fans
//! back out to every waiter; misses of distinct fields that land within one scheduling
//! tick merge into one batched decode wave. When the pending-decode queue is full the
//! daemon sheds load with the typed `BUSY` reply instead of queueing unboundedly. A
//! *ranged* code request that misses the cache takes the partial path instead: the
//! field's decode index (subsequence states + output-index prefix sums, built once)
//! maps the symbol range to the decode blocks that produce it, and only those blocks
//! are decoded — `Codec::decompress_range`.
//!
//! ## Example
//!
//! ```no_run
//! use huffdec_serve::client::Connection;
//! use huffdec_serve::net::ListenAddr;
//! use huffdec_serve::protocol::GetKind;
//!
//! let addr = ListenAddr::parse("tcp:127.0.0.1:4806").unwrap();
//! let mut conn = Connection::connect(&addr).unwrap();
//! conn.load("hacc", "/data/hacc.hfz").unwrap();
//! let field = conn.get("hacc", 0, GetKind::Data, None).unwrap();
//! println!("{} elements, cached: {}", field.elements, field.from_cache);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod daemon;
pub mod http;
pub mod net;
pub mod protocol;
mod sched;
pub mod server;
pub mod store;

pub use cache::{CacheKey, CacheStats, DecodedLru};
pub use client::{ClientError, Connection, GetResult, RetryPolicy};
pub use daemon::{Daemon, DaemonBuilder, DaemonOptions, ServerHandle};
pub use http::{HttpEndpoints, HttpServer, MetricsServer};
pub use huffdec_codec::{
    ArchiveHandle, Backend, BackendKind, Codec, FieldHandle, HfzError, Metrics, MetricsSnapshot,
};
pub use net::{ListenAddr, Listener};
pub use protocol::{GetKind, ProtocolError, Request, Response};
pub use server::{Health, Server, ServerConfig, ServerState};
pub use store::{ArchiveStore, LoadedArchive};
