//! Transport: the daemon listens on either a TCP socket or (on Unix) a Unix-domain
//! socket; both sides of the protocol speak over a [`Conn`].
//!
//! Addresses are spelled `tcp:HOST:PORT` or `unix:PATH`; a bare `HOST:PORT` means TCP.
//! `tcp:HOST:0` binds an ephemeral port — [`Listener::local_addr`] reports the resolved
//! one, which is how tests and the smoke jobs avoid port collisions.

use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;

#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};

/// A parsed listen/connect address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// `tcp:HOST:PORT`.
    Tcp(String),
    /// `unix:PATH`.
    Unix(PathBuf),
}

impl ListenAddr {
    /// Parses an address: `tcp:HOST:PORT`, `unix:PATH`, or bare `HOST:PORT` (TCP).
    pub fn parse(spec: &str) -> Result<ListenAddr, String> {
        if let Some(rest) = spec.strip_prefix("tcp:") {
            if rest.is_empty() {
                return Err("empty TCP address".to_string());
            }
            Ok(ListenAddr::Tcp(rest.to_string()))
        } else if let Some(rest) = spec.strip_prefix("unix:") {
            if rest.is_empty() {
                return Err("empty Unix socket path".to_string());
            }
            Ok(ListenAddr::Unix(PathBuf::from(rest)))
        } else if spec.contains(':') {
            Ok(ListenAddr::Tcp(spec.to_string()))
        } else {
            Err(format!(
                "address '{}' is neither tcp:HOST:PORT nor unix:PATH",
                spec
            ))
        }
    }
}

impl fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ListenAddr::Tcp(addr) => write!(f, "tcp:{}", addr),
            ListenAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// One accepted or dialed connection.
#[derive(Debug)]
pub enum Conn {
    /// A TCP stream.
    Tcp(TcpStream),
    /// A Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Switches the stream between blocking and non-blocking mode (the event-loop
    /// server runs every accepted connection non-blocking).
    pub fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }

    /// Sets the read and write timeouts (`None` means block forever). Clients use
    /// this so a dead peer surfaces as `TimedOut` instead of hanging a blocking read.
    pub fn set_timeouts(
        &self,
        read: Option<std::time::Duration>,
        write: Option<std::time::Duration>,
    ) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                s.set_read_timeout(read)?;
                s.set_write_timeout(write)
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                s.set_read_timeout(read)?;
                s.set_write_timeout(write)
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Dials `addr`.
pub fn connect(addr: &ListenAddr) -> std::io::Result<Conn> {
    match addr {
        ListenAddr::Tcp(a) => Ok(Conn::Tcp(TcpStream::connect(a)?)),
        #[cfg(unix)]
        ListenAddr::Unix(path) => Ok(Conn::Unix(UnixStream::connect(path)?)),
        #[cfg(not(unix))]
        ListenAddr::Unix(_) => Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "unix sockets are not available on this platform",
        )),
    }
}

/// The daemon's bound listening socket.
#[derive(Debug)]
pub enum Listener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener (the file is removed when the listener is dropped).
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds `addr`. A stale Unix socket file from a previous run is removed first
    /// (binding over it would otherwise fail forever).
    pub fn bind(addr: &ListenAddr) -> std::io::Result<Listener> {
        match addr {
            ListenAddr::Tcp(a) => Ok(Listener::Tcp(TcpListener::bind(a)?)),
            #[cfg(unix)]
            ListenAddr::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                Ok(Listener::Unix(UnixListener::bind(path)?, path.clone()))
            }
            #[cfg(not(unix))]
            ListenAddr::Unix(_) => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
        }
    }

    /// The resolved address (for TCP this reports the actual port, so binding port 0
    /// yields a dialable address).
    pub fn local_addr(&self) -> std::io::Result<ListenAddr> {
        match self {
            Listener::Tcp(l) => Ok(ListenAddr::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            Listener::Unix(_, path) => Ok(ListenAddr::Unix(path.clone())),
        }
    }

    /// Blocks until the next connection (or returns `WouldBlock` immediately when the
    /// listener is in non-blocking mode and nothing is pending).
    pub fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => Ok(Conn::Tcp(l.accept()?.0)),
            #[cfg(unix)]
            Listener::Unix(l, _) => Ok(Conn::Unix(l.accept()?.0)),
        }
    }

    /// Switches the listener between blocking and non-blocking accept.
    pub fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(nonblocking),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_parsing() {
        assert_eq!(
            ListenAddr::parse("tcp:127.0.0.1:4806").unwrap(),
            ListenAddr::Tcp("127.0.0.1:4806".into())
        );
        assert_eq!(
            ListenAddr::parse("127.0.0.1:0").unwrap(),
            ListenAddr::Tcp("127.0.0.1:0".into())
        );
        assert_eq!(
            ListenAddr::parse("unix:/tmp/hfzd.sock").unwrap(),
            ListenAddr::Unix(PathBuf::from("/tmp/hfzd.sock"))
        );
        assert!(ListenAddr::parse("nonsense").is_err());
        assert!(ListenAddr::parse("tcp:").is_err());
        assert!(ListenAddr::parse("unix:").is_err());
        assert_eq!(ListenAddr::parse("tcp:h:1").unwrap().to_string(), "tcp:h:1");
    }

    #[test]
    fn tcp_ephemeral_port_resolves() {
        let listener = Listener::bind(&ListenAddr::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        match &addr {
            ListenAddr::Tcp(a) => assert!(!a.ends_with(":0"), "port must be resolved: {}", a),
            _ => panic!("expected tcp"),
        }
        // The resolved address is dialable.
        let handle = std::thread::spawn(move || listener.accept().map(|_| ()));
        connect(&addr).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_binds_and_cleans_up() {
        let dir = std::env::temp_dir().join("hfzd-net-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.sock");
        // A stale socket file is replaced, and dropping the listener removes it.
        std::fs::write(&path, b"stale").unwrap();
        let addr = ListenAddr::Unix(path.clone());
        let listener = Listener::bind(&addr).unwrap();
        let handle = std::thread::spawn(move || listener.accept().map(|_| ()));
        connect(&addr).unwrap();
        handle.join().unwrap().unwrap();
        assert!(!path.exists(), "socket file removed on drop");
    }
}
