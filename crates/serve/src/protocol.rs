//! The `hfzd` wire protocol: a small length-prefixed binary request/response format.
//!
//! Every message is one **frame**: a little-endian `u32` body length followed by the
//! body. A request body is `version (u8) | opcode (u8) | operands`; a response body is
//! `version (u8) | status (u8) | operands`. Strings are `u16` length + UTF-8; bulk
//! byte payloads are `u64` length + bytes. The commands:
//!
//! | opcode | command | request operands | ok-response operands |
//! |-------:|---------|------------------|----------------------|
//! | 1 | `LIST` | — | JSON document (archives, fields, metadata) |
//! | 2 | `GET`  | archive, field, kind, optional range | kind, `from_cache`, `partial`, element count, bytes |
//! | 3 | `STATS` | — | JSON document (cache + decode counters) |
//! | 4 | `VERIFY` | archive | text report, one line per field |
//! | 5 | `SHUTDOWN` | — | — (the daemon stops accepting and drains) |
//! | 6 | `LOAD` | name, path | field count |
//! | 7 | `GETBATCH` | archive, kind, field-index list | per field: `from_cache`, element count, bytes |
//! | 8 | `METRICS` | — | Prometheus text exposition of the daemon's registry |
//!
//! Additionally, a saturated daemon may answer `GET`/`GETBATCH` with a `BUSY` reply
//! (tag 9, no operands): the pending-decode queue is full and the request was shed
//! rather than queued. `BUSY` is admission control, not an error — the client should
//! back off and retry (the `hfzr` router does this on the failover path).
//!
//! `GETBATCH` fetches several whole fields of one archive in a single round trip; the
//! daemon decodes every cache miss as **one batched wave** (shared worker pool,
//! overlapped kernels) instead of N serial decodes, then fills the same LRU single-field
//! `GET`s hit.
//!
//! `GET` serves either the reconstructed field (`kind` = data: little-endian f32s,
//! field archives only) or the decoded quantization codes (`kind` = codes: little-endian
//! u16s, any archive). A range addresses *elements* (= symbols for codes); ranged code
//! requests decode only the overlapping blocks on a cache miss.
//!
//! Frames are bounded ([`MAX_REQUEST_BYTES`] / [`MAX_RESPONSE_BYTES`]) so a corrupt or
//! hostile peer cannot drive an unbounded allocation, mirroring the container's
//! defensive-parsing stance: every malformed body surfaces as a typed
//! [`ProtocolError`], never a panic.

use std::io::{Read, Write};

/// Protocol version; bumped on any incompatible change.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard ceiling on a request frame (requests carry only names and ranges).
pub const MAX_REQUEST_BYTES: u32 = 1 << 20;

/// Hard ceiling on a response frame (responses carry decoded fields).
pub const MAX_RESPONSE_BYTES: u32 = 1 << 30;

/// What a `GET` asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GetKind {
    /// The reconstructed field: little-endian f32s (field archives only).
    Data,
    /// The decoded quantization codes: little-endian u16s (any archive).
    Codes,
}

impl GetKind {
    /// Bytes one element of this kind occupies on the wire.
    pub fn element_bytes(&self) -> u64 {
        match self {
            GetKind::Data => 4,
            GetKind::Codes => 2,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            GetKind::Data => 0,
            GetKind::Codes => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<GetKind, ProtocolError> {
        match tag {
            0 => Ok(GetKind::Data),
            1 => Ok(GetKind::Codes),
            _ => Err(ProtocolError::Malformed("unknown GET kind")),
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Describe the loaded archives and their fields.
    List,
    /// Fetch (a range of) a decoded field.
    Get {
        /// Name the archive was loaded under.
        archive: String,
        /// Field index within the archive file (files may concatenate archives).
        field: u32,
        /// Data or codes.
        kind: GetKind,
        /// Optional element range `(start, len)`; `None` fetches the whole field.
        range: Option<(u64, u64)>,
    },
    /// Fetch cache and decode counters.
    Stats,
    /// Decode every field of an archive and check its stored decoded-stream digest.
    Verify {
        /// Name the archive was loaded under.
        archive: String,
    },
    /// Stop the daemon.
    Shutdown,
    /// Load an archive file into memory under a name.
    Load {
        /// Name to serve the archive under.
        name: String,
        /// Filesystem path of the `HFZ1` file.
        path: String,
    },
    /// Fetch several whole decoded fields of one archive in a single round trip; cold
    /// fields are decoded as one batched wave.
    GetBatch {
        /// Name the archive was loaded under.
        archive: String,
        /// Data or codes (applies to every requested field).
        kind: GetKind,
        /// Field indices to fetch, in response order.
        fields: Vec<u32>,
    },
    /// Fetch the daemon's metrics registry in Prometheus text exposition format (the
    /// same document the HTTP sidecar serves at `/metrics`).
    Metrics,
}

/// Hard ceiling on the number of fields one `GETBATCH` may request.
pub const MAX_BATCH_FIELDS: usize = 1024;

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The request failed; the message says why.
    Error(String),
    /// `LIST` result: a JSON document.
    List(String),
    /// `GET` result.
    Get {
        /// What the bytes are.
        kind: GetKind,
        /// Whether the bytes came from the decoded-field cache.
        from_cache: bool,
        /// Whether a partial (range-limited) decode produced them.
        partial: bool,
        /// Number of elements returned.
        elements: u64,
        /// The raw little-endian bytes.
        bytes: Vec<u8>,
    },
    /// `STATS` result: a JSON document.
    Stats(String),
    /// `VERIFY` result: a human-readable report, one line per field.
    Verify(String),
    /// `LOAD` result: how many fields the archive file contains.
    Loaded {
        /// Field count.
        fields: u32,
    },
    /// `SHUTDOWN` acknowledged.
    ShuttingDown,
    /// `GETBATCH` result: one item per requested field, in request order.
    GetBatch {
        /// What every item's bytes are.
        kind: GetKind,
        /// The fetched fields.
        items: Vec<BatchGetItem>,
    },
    /// `METRICS` result: a Prometheus text exposition document.
    Metrics(String),
    /// The daemon's pending-decode queue is saturated and the request was shed;
    /// back off and retry. Only `GET`/`GETBATCH` can be answered this way.
    Busy,
}

/// One field of a `GETBATCH` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchGetItem {
    /// Whether the bytes came from the decoded-field cache (misses were decoded in the
    /// request's batched wave).
    pub from_cache: bool,
    /// Number of elements returned.
    pub elements: u64,
    /// The raw little-endian bytes.
    pub bytes: Vec<u8>,
}

/// Everything that can go wrong speaking the protocol.
#[derive(Debug)]
pub enum ProtocolError {
    /// An underlying socket error.
    Io(std::io::Error),
    /// A frame exceeded its size ceiling.
    FrameTooLarge {
        /// The length the frame claimed.
        claimed: u32,
        /// The applicable ceiling.
        limit: u32,
    },
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// The version found in the frame.
        found: u8,
    },
    /// A structurally invalid body.
    Malformed(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "socket error: {}", e),
            ProtocolError::FrameTooLarge { claimed, limit } => {
                write!(f, "frame of {} bytes exceeds the {} limit", claimed, limit)
            }
            ProtocolError::VersionMismatch { found } => write!(
                f,
                "protocol version {} (this build speaks {})",
                found, PROTOCOL_VERSION
            ),
            ProtocolError::Malformed(reason) => write!(f, "malformed message: {}", reason),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<ProtocolError> for huffdec_codec::HfzError {
    /// Transport and framing failures surface as the facade's protocol variant, so CLI
    /// consumers map every remote failure to one exit code.
    fn from(e: ProtocolError) -> Self {
        huffdec_codec::HfzError::Protocol(e.to_string())
    }
}

// --- Framing ---------------------------------------------------------------------------

/// Writes one frame (length prefix + body), refusing bodies over `limit` — a length
/// prefix must never wrap (`as u32`) or promise more than the peer will accept, or the
/// stream desynchronizes.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8], limit: u32) -> Result<(), ProtocolError> {
    if body.len() as u64 > limit as u64 {
        return Err(ProtocolError::FrameTooLarge {
            claimed: body.len().min(u32::MAX as usize) as u32,
            limit,
        });
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, enforcing `limit`. Returns `None` on a clean EOF at the frame
/// boundary (the peer closed the connection).
pub fn read_frame<R: Read>(r: &mut R, limit: u32) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > limit {
        return Err(ProtocolError::FrameTooLarge {
            claimed: len,
            limit,
        });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

// --- Body encoding ---------------------------------------------------------------------

struct BodyWriter {
    buf: Vec<u8>,
}

impl BodyWriter {
    fn new(opcode_or_status: u8) -> Self {
        BodyWriter {
            buf: vec![PROTOCOL_VERSION, opcode_or_status],
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str16(&mut self, s: &str) {
        let bytes = s.as_bytes();
        debug_assert!(bytes.len() <= u16::MAX as usize);
        self.buf
            .extend_from_slice(&(bytes.len() as u16).to_le_bytes());
        self.buf.extend_from_slice(bytes);
    }

    fn blob(&mut self, bytes: &[u8]) {
        self.u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    fn text(&mut self, s: &str) {
        self.blob(s.as_bytes());
    }
}

struct BodyReader<'a> {
    rest: &'a [u8],
}

impl<'a> BodyReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.rest.len() < n {
            return Err(ProtocolError::Malformed("body ends early"));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str16(&mut self) -> Result<String, ProtocolError> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().unwrap()) as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| ProtocolError::Malformed("string is not UTF-8"))
    }

    fn blob(&mut self) -> Result<Vec<u8>, ProtocolError> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| ProtocolError::Malformed("blob too long"))?;
        Ok(self.take(len)?.to_vec())
    }

    fn text(&mut self) -> Result<String, ProtocolError> {
        String::from_utf8(self.blob()?).map_err(|_| ProtocolError::Malformed("text is not UTF-8"))
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed("trailing bytes in body"))
        }
    }
}

fn check_version(r: &mut BodyReader<'_>) -> Result<(), ProtocolError> {
    let found = r.u8()?;
    if found != PROTOCOL_VERSION {
        return Err(ProtocolError::VersionMismatch { found });
    }
    Ok(())
}

const OP_LIST: u8 = 1;
const OP_GET: u8 = 2;
const OP_STATS: u8 = 3;
const OP_VERIFY: u8 = 4;
const OP_SHUTDOWN: u8 = 5;
const OP_LOAD: u8 = 6;
const OP_GET_BATCH: u8 = 7;
const OP_METRICS: u8 = 8;

const STATUS_OK: u8 = 0;
const STATUS_ERROR: u8 = 1;

impl Request {
    /// Serializes the request into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::List => BodyWriter::new(OP_LIST).buf,
            Request::Get {
                archive,
                field,
                kind,
                range,
            } => {
                let mut w = BodyWriter::new(OP_GET);
                w.str16(archive);
                w.u32(*field);
                w.u8(kind.tag());
                match range {
                    Some((start, len)) => {
                        w.u8(1);
                        w.u64(*start);
                        w.u64(*len);
                    }
                    None => {
                        w.u8(0);
                        w.u64(0);
                        w.u64(0);
                    }
                }
                w.buf
            }
            Request::Stats => BodyWriter::new(OP_STATS).buf,
            Request::Verify { archive } => {
                let mut w = BodyWriter::new(OP_VERIFY);
                w.str16(archive);
                w.buf
            }
            Request::Shutdown => BodyWriter::new(OP_SHUTDOWN).buf,
            Request::Load { name, path } => {
                let mut w = BodyWriter::new(OP_LOAD);
                w.str16(name);
                w.str16(path);
                w.buf
            }
            Request::GetBatch {
                archive,
                kind,
                fields,
            } => {
                let mut w = BodyWriter::new(OP_GET_BATCH);
                w.str16(archive);
                w.u8(kind.tag());
                w.u32(fields.len() as u32);
                for &f in fields {
                    w.u32(f);
                }
                w.buf
            }
            Request::Metrics => BodyWriter::new(OP_METRICS).buf,
        }
    }

    /// Parses a frame body into a request.
    pub fn decode(body: &[u8]) -> Result<Request, ProtocolError> {
        let mut r = BodyReader { rest: body };
        check_version(&mut r)?;
        let opcode = r.u8()?;
        let request = match opcode {
            OP_LIST => Request::List,
            OP_GET => {
                let archive = r.str16()?;
                let field = r.u32()?;
                let kind = GetKind::from_tag(r.u8()?)?;
                let has_range = r.u8()?;
                let start = r.u64()?;
                let len = r.u64()?;
                let range = match has_range {
                    0 => None,
                    1 => Some((start, len)),
                    _ => return Err(ProtocolError::Malformed("bad range marker")),
                };
                Request::Get {
                    archive,
                    field,
                    kind,
                    range,
                }
            }
            OP_STATS => Request::Stats,
            OP_VERIFY => Request::Verify {
                archive: r.str16()?,
            },
            OP_SHUTDOWN => Request::Shutdown,
            OP_LOAD => Request::Load {
                name: r.str16()?,
                path: r.str16()?,
            },
            OP_GET_BATCH => {
                let archive = r.str16()?;
                let kind = GetKind::from_tag(r.u8()?)?;
                let count = r.u32()? as usize;
                if count > MAX_BATCH_FIELDS {
                    return Err(ProtocolError::Malformed("batch requests too many fields"));
                }
                let mut fields = Vec::with_capacity(count);
                for _ in 0..count {
                    fields.push(r.u32()?);
                }
                Request::GetBatch {
                    archive,
                    kind,
                    fields,
                }
            }
            OP_METRICS => Request::Metrics,
            _ => return Err(ProtocolError::Malformed("unknown opcode")),
        };
        r.finish()?;
        Ok(request)
    }
}

const RESP_LIST: u8 = 1;
const RESP_GET: u8 = 2;
const RESP_STATS: u8 = 3;
const RESP_VERIFY: u8 = 4;
const RESP_SHUTDOWN: u8 = 5;
const RESP_LOADED: u8 = 6;
const RESP_GET_BATCH: u8 = 7;
const RESP_METRICS: u8 = 8;
const RESP_BUSY: u8 = 9;

impl Response {
    /// Serializes the response into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        if let Response::Error(message) = self {
            let mut w = BodyWriter::new(STATUS_ERROR);
            w.text(message);
            return w.buf;
        }
        let mut w = BodyWriter::new(STATUS_OK);
        match self {
            Response::Error(_) => unreachable!("handled above"),
            Response::List(json) => {
                w.u8(RESP_LIST);
                w.text(json);
            }
            Response::Get {
                kind,
                from_cache,
                partial,
                elements,
                bytes,
            } => {
                w.u8(RESP_GET);
                w.u8(kind.tag());
                w.u8(*from_cache as u8);
                w.u8(*partial as u8);
                w.u64(*elements);
                w.blob(bytes);
            }
            Response::Stats(json) => {
                w.u8(RESP_STATS);
                w.text(json);
            }
            Response::Verify(report) => {
                w.u8(RESP_VERIFY);
                w.text(report);
            }
            Response::Loaded { fields } => {
                w.u8(RESP_LOADED);
                w.u32(*fields);
            }
            Response::ShuttingDown => {
                w.u8(RESP_SHUTDOWN);
            }
            Response::GetBatch { kind, items } => {
                w.u8(RESP_GET_BATCH);
                w.u8(kind.tag());
                w.u32(items.len() as u32);
                for item in items {
                    w.u8(item.from_cache as u8);
                    w.u64(item.elements);
                    w.blob(&item.bytes);
                }
            }
            Response::Metrics(text) => {
                w.u8(RESP_METRICS);
                w.text(text);
            }
            Response::Busy => {
                w.u8(RESP_BUSY);
            }
        }
        w.buf
    }

    /// Parses a frame body into a response.
    pub fn decode(body: &[u8]) -> Result<Response, ProtocolError> {
        let mut r = BodyReader { rest: body };
        check_version(&mut r)?;
        let status = r.u8()?;
        if status == STATUS_ERROR {
            let message = r.text()?;
            r.finish()?;
            return Ok(Response::Error(message));
        }
        if status != STATUS_OK {
            return Err(ProtocolError::Malformed("unknown status"));
        }
        let tag = r.u8()?;
        let response = match tag {
            RESP_LIST => Response::List(r.text()?),
            RESP_GET => {
                let kind = GetKind::from_tag(r.u8()?)?;
                let from_cache = r.u8()? != 0;
                let partial = r.u8()? != 0;
                let elements = r.u64()?;
                let bytes = r.blob()?;
                // Checked: `elements` is wire data — an absurd count must not overflow
                // past validation (or panic) before the mismatch is reported.
                let expected = elements.checked_mul(kind.element_bytes());
                if expected != Some(bytes.len() as u64) {
                    return Err(ProtocolError::Malformed("byte count disagrees with count"));
                }
                Response::Get {
                    kind,
                    from_cache,
                    partial,
                    elements,
                    bytes,
                }
            }
            RESP_STATS => Response::Stats(r.text()?),
            RESP_VERIFY => Response::Verify(r.text()?),
            RESP_LOADED => Response::Loaded { fields: r.u32()? },
            RESP_SHUTDOWN => Response::ShuttingDown,
            RESP_GET_BATCH => {
                let kind = GetKind::from_tag(r.u8()?)?;
                let count = r.u32()? as usize;
                if count > MAX_BATCH_FIELDS {
                    return Err(ProtocolError::Malformed("batch response too large"));
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    let from_cache = r.u8()? != 0;
                    let elements = r.u64()?;
                    let bytes = r.blob()?;
                    // Same wire-data check as single GET: an absurd element count must
                    // surface as a typed mismatch, never an overflow.
                    if elements.checked_mul(kind.element_bytes()) != Some(bytes.len() as u64) {
                        return Err(ProtocolError::Malformed("byte count disagrees with count"));
                    }
                    items.push(BatchGetItem {
                        from_cache,
                        elements,
                        bytes,
                    });
                }
                Response::GetBatch { kind, items }
            }
            RESP_METRICS => Response::Metrics(r.text()?),
            RESP_BUSY => Response::Busy,
            _ => return Err(ProtocolError::Malformed("unknown response tag")),
        };
        r.finish()?;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let cases = vec![
            Request::List,
            Request::Stats,
            Request::Shutdown,
            Request::Verify {
                archive: "hacc".into(),
            },
            Request::Load {
                name: "gamess".into(),
                path: "/tmp/gamess.hfz".into(),
            },
            Request::Get {
                archive: "hacc".into(),
                field: 2,
                kind: GetKind::Data,
                range: None,
            },
            Request::Get {
                archive: "hacc".into(),
                field: 0,
                kind: GetKind::Codes,
                range: Some((1024, 4096)),
            },
            Request::GetBatch {
                archive: "snap".into(),
                kind: GetKind::Data,
                fields: vec![0, 2, 1],
            },
            Request::GetBatch {
                archive: "snap".into(),
                kind: GetKind::Codes,
                fields: vec![],
            },
            Request::Metrics,
        ];
        for req in cases {
            let body = req.encode();
            assert_eq!(Request::decode(&body).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let cases = vec![
            Response::Error("no such archive".into()),
            Response::List("{\"archives\":[]}".into()),
            Response::Stats("{}".into()),
            Response::Verify("field 0: ok".into()),
            Response::Loaded { fields: 3 },
            Response::ShuttingDown,
            Response::Get {
                kind: GetKind::Codes,
                from_cache: true,
                partial: false,
                elements: 3,
                bytes: vec![1, 0, 2, 0, 3, 0],
            },
            Response::GetBatch {
                kind: GetKind::Codes,
                items: vec![
                    BatchGetItem {
                        from_cache: true,
                        elements: 2,
                        bytes: vec![1, 0, 2, 0],
                    },
                    BatchGetItem {
                        from_cache: false,
                        elements: 0,
                        bytes: vec![],
                    },
                ],
            },
            Response::Metrics("# HELP hfz_requests_total requests\n".into()),
            Response::Busy,
        ];
        for resp in cases {
            let body = resp.encode();
            assert_eq!(Response::decode(&body).unwrap(), resp);
        }
    }

    #[test]
    fn frames_roundtrip_and_eof_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", 1024).unwrap();
        write_frame(&mut buf, b"", 1024).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = buf.as_slice();
        assert!(matches!(
            read_frame(&mut r, MAX_REQUEST_BYTES),
            Err(ProtocolError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn oversized_body_is_refused_before_writing() {
        // A body over the limit must not be serialized at all — a wrapped or
        // over-limit length prefix would desynchronize the stream.
        let mut buf = Vec::new();
        let body = vec![0u8; 11];
        assert!(matches!(
            write_frame(&mut buf, &body, 10),
            Err(ProtocolError::FrameTooLarge {
                claimed: 11,
                limit: 10
            })
        ));
        assert!(buf.is_empty(), "nothing was written");
    }

    #[test]
    fn malformed_bodies_are_typed_errors() {
        // Wrong version.
        assert!(matches!(
            Request::decode(&[99, OP_LIST]),
            Err(ProtocolError::VersionMismatch { found: 99 })
        ));
        // Unknown opcode.
        assert!(Request::decode(&[PROTOCOL_VERSION, 200]).is_err());
        // Truncated GET.
        let mut body = Request::Get {
            archive: "a".into(),
            field: 0,
            kind: GetKind::Data,
            range: None,
        }
        .encode();
        body.truncate(body.len() - 3);
        assert!(Request::decode(&body).is_err());
        // Trailing garbage.
        let mut body = Request::List.encode();
        body.push(0);
        assert!(Request::decode(&body).is_err());
        // GET response whose byte count disagrees with its element count.
        let resp = Response::Get {
            kind: GetKind::Codes,
            from_cache: false,
            partial: false,
            elements: 5,
            bytes: vec![0; 4],
        };
        assert!(Response::decode(&resp.encode()).is_err());
        // An element count whose byte size overflows u64 must be a typed error, not an
        // overflow panic (debug) or a wrapped pass (release).
        let resp = Response::Get {
            kind: GetKind::Codes,
            from_cache: false,
            partial: false,
            elements: u64::MAX,
            bytes: Vec::new(),
        };
        assert!(matches!(
            Response::decode(&resp.encode()),
            Err(ProtocolError::Malformed(_))
        ));
        // A batch naming more fields than the protocol ceiling is a typed error.
        let oversized = Request::GetBatch {
            archive: "a".into(),
            kind: GetKind::Data,
            fields: vec![0; MAX_BATCH_FIELDS + 1],
        };
        assert!(matches!(
            Request::decode(&oversized.encode()),
            Err(ProtocolError::Malformed(_))
        ));
        // A batch item whose byte count disagrees with its element count is rejected.
        let resp = Response::GetBatch {
            kind: GetKind::Data,
            items: vec![BatchGetItem {
                from_cache: false,
                elements: 3,
                bytes: vec![0; 8],
            }],
        };
        assert!(matches!(
            Response::decode(&resp.encode()),
            Err(ProtocolError::Malformed(_))
        ));
    }
}
