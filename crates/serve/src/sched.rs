//! The decode scheduler: single-flight coalescing plus tick-merged batch waves.
//!
//! The daemon's request path hands every full-field cache miss to this scheduler
//! instead of decoding on the requesting thread. Two properties fall out:
//!
//! * **Single-flight** — a per-`(archive, generation, field, kind)` in-flight table
//!   deduplicates concurrent misses of the *same* field: the first miss creates a
//!   [`FlightSlot`], every later one joins it, and the one decode's result fans back
//!   out to all waiters (`sched_coalesced` counts the joins).
//! * **Wave batching** — misses on *distinct* fields that arrive within one scheduling
//!   tick drain together as a single wave, which the worker submits through the
//!   codec's wave API (`decompress_wave` / `decode_codes_wave`) so they run as one
//!   overlapped batch — the serving-side analogue of the paper's batched kernel
//!   launches (`sched_waves` / `sched_wave_fields` / `sched_multi_field_waves`).
//!
//! Admission control: the pending queue is bounded. A submission that would push it
//! past the bound is **shed** — nothing is enqueued, `sched_shed` is bumped, and the
//! server answers the typed `BUSY` protocol reply instead of queueing unbounded work
//! under overload.
//!
//! The scheduler is pure bookkeeping (a mutex, a condvar, a map); the decode itself
//! runs on the daemon's wave-worker thread, which loops on [`Scheduler::next_wave`].

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use huffdec_metrics::Metrics;

use crate::cache::CacheKey;
use crate::store::LoadedArchive;

/// One in-flight decode: waiters block on (or poll) the slot until the wave worker
/// completes it with either the decoded bytes or an error message.
#[derive(Debug, Default)]
pub(crate) struct FlightSlot {
    done: Mutex<Option<Result<Arc<Vec<u8>>, String>>>,
    cv: Condvar,
}

impl FlightSlot {
    fn new() -> Arc<FlightSlot> {
        Arc::new(FlightSlot::default())
    }

    /// Blocks until the flight completes.
    pub fn wait(&self) -> Result<Arc<Vec<u8>>, String> {
        let mut done = self.done.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = done.as_ref() {
                return result.clone();
            }
            done = self.cv.wait(done).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Non-blocking read: `Some` once the flight completed (the event loop polls this).
    pub fn try_get(&self) -> Option<Result<Arc<Vec<u8>>, String>> {
        self.done.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Completes the flight and wakes every waiter. First completion wins.
    pub(crate) fn complete(&self, result: Result<Arc<Vec<u8>>, String>) {
        let mut done = self.done.lock().unwrap_or_else(|p| p.into_inner());
        if done.is_none() {
            *done = Some(result);
        }
        drop(done);
        self.cv.notify_all();
    }
}

/// One pending decode the wave worker will run: which field, and the slot its result
/// fans out through. The task pins the loaded archive alive for the decode's duration.
#[derive(Debug)]
pub(crate) struct DecodeTask {
    /// Cache key of the representation being decoded (`key.kind` selects the wave).
    pub key: CacheKey,
    /// The archive the field lives in.
    pub loaded: Arc<LoadedArchive>,
    /// Field index within the archive.
    pub field: usize,
    /// Where the result lands.
    pub slot: Arc<FlightSlot>,
}

/// What a submission resolved to: the flight to wait on, and whether this submission
/// *created* it (vs. joining one already in flight).
#[derive(Debug)]
pub(crate) struct SubmitOutcome {
    /// The flight carrying this field's decode.
    pub slot: Arc<FlightSlot>,
    /// True when this submission enqueued the decode (false = coalesced join).
    pub created: bool,
}

#[derive(Debug)]
struct SchedInner {
    pending: Vec<DecodeTask>,
    inflight: HashMap<CacheKey, Arc<FlightSlot>>,
    stop: bool,
}

/// The single-flight table and bounded pending queue shared by every connection.
#[derive(Debug)]
pub(crate) struct Scheduler {
    inner: Mutex<SchedInner>,
    wake: Condvar,
    queue_bound: usize,
    tick: Duration,
    metrics: Arc<Metrics>,
}

impl Scheduler {
    /// A scheduler admitting at most `queue_bound` not-yet-started decodes, holding
    /// each wave open for `tick` so concurrent misses can merge into it.
    pub fn new(queue_bound: usize, tick: Duration, metrics: Arc<Metrics>) -> Scheduler {
        Scheduler {
            inner: Mutex::new(SchedInner {
                pending: Vec::new(),
                inflight: HashMap::new(),
                stop: false,
            }),
            wake: Condvar::new(),
            queue_bound,
            tick,
            metrics,
        }
    }

    fn lock(&self) -> MutexGuard<'_, SchedInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Submits one request's cold fields as a single admission decision. Keys must be
    /// distinct within the group (the server dedups duplicates in a batch request).
    ///
    /// Fields already in flight are joined (no queue slot consumed, `sched_coalesced`
    /// bumped); the rest are enqueued for the next wave. If enqueueing the new fields
    /// would push the pending queue past the bound — or the daemon is shutting down —
    /// the **whole group** is shed: nothing is enqueued, `sched_shed` is bumped once,
    /// and `None` tells the server to answer `BUSY`.
    pub fn submit_group(
        &self,
        wants: &[(CacheKey, Arc<LoadedArchive>, usize)],
    ) -> Option<Vec<SubmitOutcome>> {
        let mut inner = self.lock();
        let new_needed = wants
            .iter()
            .filter(|(key, _, _)| !inner.inflight.contains_key(key))
            .count();
        if inner.stop || inner.pending.len() + new_needed > self.queue_bound {
            self.metrics.sched_shed.inc();
            return None;
        }
        let mut outcomes = Vec::with_capacity(wants.len());
        for (key, loaded, field) in wants {
            if let Some(slot) = inner.inflight.get(key) {
                self.metrics.sched_coalesced.inc();
                outcomes.push(SubmitOutcome {
                    slot: Arc::clone(slot),
                    created: false,
                });
                continue;
            }
            let slot = FlightSlot::new();
            inner.inflight.insert(key.clone(), Arc::clone(&slot));
            inner.pending.push(DecodeTask {
                key: key.clone(),
                loaded: Arc::clone(loaded),
                field: *field,
                slot: Arc::clone(&slot),
            });
            outcomes.push(SubmitOutcome {
                slot,
                created: true,
            });
        }
        self.metrics
            .sched_queue_depth
            .set(inner.pending.len() as u64);
        drop(inner);
        self.wake.notify_all();
        Some(outcomes)
    }

    /// Worker side: blocks until at least one decode is pending, holds the wave open
    /// for one tick so concurrent misses can merge into it, then drains the whole
    /// queue as one wave. Returns `None` once the scheduler is stopped and drained.
    pub fn next_wave(&self) -> Option<Vec<DecodeTask>> {
        loop {
            {
                let mut inner = self.lock();
                loop {
                    if !inner.pending.is_empty() {
                        break;
                    }
                    if inner.stop {
                        return None;
                    }
                    inner = self.wake.wait(inner).unwrap_or_else(|p| p.into_inner());
                }
            }
            // The merge window: sleep outside the lock so submitters can still get in.
            if !self.tick.is_zero() {
                std::thread::sleep(self.tick);
            }
            let tasks: Vec<DecodeTask> = {
                let mut inner = self.lock();
                inner.pending.drain(..).collect()
            };
            self.metrics.sched_queue_depth.set(0);
            if tasks.is_empty() {
                continue; // a stop() raced the tick and failed the queue
            }
            self.metrics.sched_waves.inc();
            self.metrics.sched_wave_fields.add(tasks.len() as u64);
            if tasks.len() > 1 {
                self.metrics.sched_multi_field_waves.inc();
            }
            return Some(tasks);
        }
    }

    /// Removes a completed flight from the in-flight table. Called by the worker
    /// *after* the cache insert and the slot completion, so any miss that no longer
    /// finds the flight is guaranteed to find the cache entry (or redo the decode —
    /// correct either way, the cache's first-insert-wins dedups the bytes).
    pub fn finish(&self, key: &CacheKey) {
        self.lock().inflight.remove(key);
    }

    /// Stops the scheduler: fails every still-pending task (so blocked waiters get an
    /// error instead of hanging) and wakes the worker so it can exit.
    pub fn stop(&self) {
        let tasks: Vec<DecodeTask> = {
            let mut inner = self.lock();
            inner.stop = true;
            let tasks: Vec<DecodeTask> = inner.pending.drain(..).collect();
            for task in &tasks {
                inner.inflight.remove(&task.key);
            }
            tasks
        };
        self.metrics.sched_queue_depth.set(0);
        for task in tasks {
            task.slot
                .complete(Err("daemon is shutting down".to_string()));
        }
        self.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_slot_fans_out_to_every_waiter() {
        let slot = FlightSlot::new();
        assert!(slot.try_get().is_none());
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let slot = Arc::clone(&slot);
                std::thread::spawn(move || slot.wait())
            })
            .collect();
        let bytes = Arc::new(vec![1u8, 2, 3]);
        slot.complete(Ok(Arc::clone(&bytes)));
        for waiter in waiters {
            let got = waiter.join().unwrap().expect("completed ok");
            assert!(Arc::ptr_eq(&got, &bytes), "all waiters share one buffer");
        }
        assert!(slot.try_get().is_some(), "completion is sticky");
    }

    #[test]
    fn flight_slot_first_completion_wins() {
        let slot = FlightSlot::new();
        slot.complete(Err("first".to_string()));
        slot.complete(Ok(Arc::new(vec![9])));
        assert_eq!(slot.wait(), Err("first".to_string()));
    }
}
