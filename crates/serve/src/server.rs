//! The `hfzd` daemon: holds hot archives in memory and serves decoded blocks.
//!
//! This is the paper's §V GAMESS scenario turned into a long-running component:
//! archives stay compressed in memory (loaded once, parsed once), clients request
//! decoded fields or ranges over the socket protocol, and a shared bytes-budgeted LRU
//! ([`DecodedLru`]) absorbs the hot set so repeated `GET`s of the same field cost a
//! memcpy while cold fields pay one (simulated-GPU) decode.
//!
//! Concurrency model: one OS thread per connection, all sharing one [`ServerState`].
//! The store uses an `RwLock` (loads are rare, lookups constant), the cache uses a
//! `Mutex` held only for bookkeeping — decodes run outside every lock, so N clients
//! can decode N different cold fields in parallel while cache hits stream past them.
//! The execution backend itself is a value-typed engine and is shared immutably.
//!
//! Observability: all counting happens in the codec's [`Metrics`] registry — the codec
//! records decode/encode timings as it works, the cache records hits and evictions into
//! the same registry, and the request loop adds request-level counters. `STATS` and the
//! HTTP `/metrics` endpoint are two renders of one snapshot. Locks are recovered from
//! poisoning (`PoisonError::into_inner`): a panicking connection thread must not take
//! down stats or health reporting for the whole daemon.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use gpu_sim::GpuConfig;
use huffdec_backend::{Backend, BackendKind};
use huffdec_codec::{Codec, FieldHandle};
use huffdec_container::JsonWriter;
use huffdec_core::DecoderKind;
use huffdec_metrics::{Metrics, MetricsSnapshot};

use crate::cache::{CacheKey, CacheStats, DecodedLru};
use crate::net::{connect, Conn, ListenAddr, Listener};
use crate::protocol::{
    read_frame, write_frame, BatchGetItem, GetKind, Request, Response, MAX_REQUEST_BYTES,
    MAX_RESPONSE_BYTES,
};
use crate::store::{ArchiveStore, LoadedArchive};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Byte budget of the decoded-field LRU cache.
    pub cache_bytes: u64,
    /// Simulated device configuration.
    pub gpu: GpuConfig,
    /// Execution backend requests decode on (default: the `HFZ_BACKEND` environment
    /// variable, falling back to the simulated backend).
    pub backend: BackendKind,
    /// Host threads backing the simulated device's block execution.
    pub host_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cache_bytes: 256 << 20,
            gpu: GpuConfig::v100(),
            backend: BackendKind::from_env(),
            host_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

/// Daemon health, as the HTTP sidecar's `/healthz` endpoint reports it.
///
/// Degradation is judged over the **last window** — the delta since the previous
/// [`ServerState::health`] call — so a burst of decode errors or cache thrash clears
/// once a quiet window passes, instead of latching forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Health {
    /// Serving normally.
    Healthy,
    /// Still serving, but the last window saw decode errors or LRU thrash.
    Degraded(String),
    /// Not serving (shutdown in progress).
    Unhealthy(String),
}

/// Shared state of a running daemon.
#[derive(Debug)]
pub struct ServerState {
    codec: Codec,
    store: ArchiveStore,
    cache: Mutex<DecodedLru>,
    shutdown: AtomicBool,
    addr: ListenAddr,
    /// Resolved address of the HTTP metrics sidecar, when one is bound (shutdown pokes
    /// it the same way it pokes the protocol listener).
    metrics_addr: Mutex<Option<ListenAddr>>,
    /// The metrics snapshot taken by the previous health check — the baseline the next
    /// check's window is measured against.
    health_window: Mutex<MetricsSnapshot>,
}

impl ServerState {
    /// The facade session requests decode through.
    pub fn codec(&self) -> &Codec {
        &self.codec
    }

    /// The execution backend requests decode on.
    pub fn backend(&self) -> &dyn Backend {
        self.codec.backend()
    }

    /// The archive store. Prefer [`ServerState::load_archive`] for loading — it also
    /// invalidates stale cache entries and keeps the loaded-archives gauge current.
    pub fn store(&self) -> &ArchiveStore {
        &self.store
    }

    /// The metrics registry every component of this daemon records into.
    pub fn metrics(&self) -> &Arc<Metrics> {
        self.codec.metrics()
    }

    /// One coherent read of every instrument.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics().snapshot()
    }

    /// Locks the cache, recovering from poisoning: the LRU's invariants are maintained
    /// per-operation, so a thread that panicked elsewhere while holding the lock must
    /// not wedge every later request.
    fn lock_cache(&self) -> MutexGuard<'_, DecodedLru> {
        self.cache.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Snapshot of the cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.lock_cache().stats()
    }

    /// Current cache occupancy in bytes.
    pub fn cache_used_bytes(&self) -> u64 {
        self.lock_cache().used_bytes()
    }

    /// Loads (or replaces) an archive: parses through the store, drops any cache
    /// entries of a replaced archive, and updates the loaded-archives gauge.
    pub fn load_archive(
        &self,
        name: &str,
        path: &str,
    ) -> Result<Arc<LoadedArchive>, huffdec_codec::HfzError> {
        let loaded = self.store.load(name, path)?;
        // A re-load under the same name must not serve stale decodes.
        self.lock_cache().invalidate_archive(name);
        self.metrics().archives_loaded.set(self.store.len() as u64);
        Ok(loaded)
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and wakes the accept loops (protocol and, when bound, the
    /// HTTP metrics sidecar).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loops are blocked in `accept`; throwaway connections unblock them.
        let _ = connect(&self.addr);
        let metrics_addr = self
            .metrics_addr
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        if let Some(addr) = metrics_addr {
            let _ = connect(&addr);
        }
    }

    /// Records the HTTP metrics sidecar's resolved address so shutdown can poke it.
    pub(crate) fn set_metrics_addr(&self, addr: ListenAddr) {
        *self.metrics_addr.lock().unwrap_or_else(|p| p.into_inner()) = Some(addr);
    }

    /// Evaluates daemon health for `/healthz`: unhealthy during shutdown, degraded when
    /// the window since the previous check saw decode errors or cache thrash
    /// (evictions with misses outnumbering hits), healthy otherwise.
    pub fn health(&self) -> Health {
        if self.is_shutting_down() {
            return Health::Unhealthy("shutting down".to_string());
        }
        let current = self.metrics_snapshot();
        let prev = {
            let mut window = self.health_window.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::replace(&mut *window, current.clone())
        };
        let errors = current.decode_errors.saturating_sub(prev.decode_errors);
        if errors > 0 {
            return Health::Degraded(format!("{} decode errors in the last window", errors));
        }
        let evictions = current.cache_evictions.saturating_sub(prev.cache_evictions);
        let hits = current.cache_hits.saturating_sub(prev.cache_hits);
        let misses = current.cache_misses.saturating_sub(prev.cache_misses);
        if evictions > 0 && misses > hits {
            return Health::Degraded(format!(
                "cache thrash in the last window: {} evictions, {} misses vs {} hits",
                evictions, misses, hits
            ));
        }
        Health::Healthy
    }

    /// Handles one request. Public so in-process consumers (tests, examples) can drive
    /// the daemon without a socket.
    pub fn handle(&self, request: &Request) -> Response {
        self.metrics().requests.inc();
        match request {
            Request::List => Response::List(self.list_json()),
            Request::Stats => Response::Stats(self.stats_json()),
            Request::Metrics => Response::Metrics(self.metrics().render_prometheus()),
            Request::Shutdown => {
                self.request_shutdown();
                Response::ShuttingDown
            }
            Request::Load { name, path } => match self.load_archive(name, path) {
                Ok(loaded) => Response::Loaded {
                    fields: loaded.fields().len() as u32,
                },
                Err(e) => Response::Error(format!("cannot load '{}': {}", name, e)),
            },
            Request::Verify { archive } => match self.verify(archive) {
                Ok(report) => Response::Verify(report),
                Err(message) => Response::Error(message),
            },
            Request::Get {
                archive,
                field,
                kind,
                range,
            } => {
                self.metrics().gets.inc();
                match self.get(archive, *field, *kind, *range) {
                    Ok(response) => response,
                    Err(message) => Response::Error(message),
                }
            }
            Request::GetBatch {
                archive,
                kind,
                fields,
            } => match self.get_batch(archive, *kind, fields) {
                Ok(response) => response,
                Err(message) => Response::Error(message),
            },
        }
    }

    fn lookup(&self, archive: &str, field: u32) -> Result<(Arc<LoadedArchive>, usize), String> {
        let loaded = self
            .store
            .get(archive)
            .ok_or_else(|| format!("no archive named '{}' is loaded", archive))?;
        let index = field as usize;
        if index >= loaded.fields().len() {
            return Err(format!(
                "archive '{}' has {} fields; field {} does not exist",
                archive,
                loaded.fields().len(),
                field
            ));
        }
        Ok((loaded, index))
    }

    /// Decodes the full representation `kind` of a field (cache-filling slow path).
    /// Decode timings land in the registry inside the codec itself.
    fn decode_full(&self, field: &FieldHandle, kind: GetKind) -> Result<Vec<u8>, String> {
        match kind {
            GetKind::Data => {
                let decompressed = self
                    .codec
                    .decompress_field(field)
                    .map_err(|e| format!("decode failed: {}", e))?;
                let mut bytes = Vec::with_capacity(decompressed.data.len() * 4);
                for v in &decompressed.data {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                Ok(bytes)
            }
            GetKind::Codes => {
                let result = self
                    .codec
                    .decode_field_codes(field)
                    .map_err(|e| format!("decode failed: {}", e))?;
                let mut bytes = Vec::with_capacity(result.symbols.len() * 2);
                for s in &result.symbols {
                    bytes.extend_from_slice(&s.to_le_bytes());
                }
                Ok(bytes)
            }
        }
    }

    fn get(
        &self,
        archive: &str,
        field_index: u32,
        kind: GetKind,
        range: Option<(u64, u64)>,
    ) -> Result<Response, String> {
        let (loaded, index) = self.lookup(archive, field_index)?;
        let field = &loaded.fields()[index];
        let elements = match kind {
            GetKind::Data => field.data_elements().ok_or_else(|| {
                "archive is payload-only; request codes instead of data".to_string()
            })?,
            GetKind::Codes => field.code_elements(),
        };
        if let Some((start, len)) = range {
            let valid = start
                .checked_add(len)
                .map(|end| end <= elements)
                .unwrap_or(false);
            if !valid {
                return Err(format!(
                    "range [{}, {}+{}) exceeds the field's {} elements",
                    start, start, len, elements
                ));
            }
        }
        let key = CacheKey {
            archive: archive.to_string(),
            generation: loaded.generation,
            field: field_index,
            kind,
        };

        // Fast path: the full representation is cached; any range is a slice of it.
        let cached = self.lock_cache().get(&key);
        if let Some(bytes) = cached {
            return Ok(slice_response(&bytes, kind, range, elements, true, false));
        }

        // Miss. Ranged code requests take the partial path: decode only the
        // overlapping blocks via the field's (cached) decode index. The result is not
        // inserted — it is a fragment, and caching fragments would let a sweep of
        // small ranges evict whole hot fields. Index-build and partial-decode timings
        // are recorded inside the codec.
        if let (GetKind::Codes, Some((start, len))) = (kind, range) {
            let r = self
                .codec
                .decompress_range(field, start, len)
                .map_err(|e| format!("range decode failed: {}", e))?;
            let mut bytes = Vec::with_capacity(r.symbols.len() * 2);
            for sym in &r.symbols {
                bytes.extend_from_slice(&sym.to_le_bytes());
            }
            return Ok(Response::Get {
                kind,
                from_cache: false,
                partial: true,
                elements: len,
                bytes,
            });
        }

        // Full decode (data requests also land here for ranges: Lorenzo reconstruction
        // is a prefix scan, so a data range needs the whole field once — after which
        // the cache serves every later range as a slice).
        let bytes = self.decode_full(field, kind)?;
        let bytes = self.lock_cache().insert(key, bytes);
        Ok(slice_response(&bytes, kind, range, elements, false, false))
    }

    /// Serves a multi-field fetch: cache hits stream straight out, and *all* misses are
    /// decoded as one batched wave ([`Codec::decompress_batch`] /
    /// [`Codec::decode_field_codes_batch`]) instead of N serial decodes, then inserted into
    /// the same LRU single-field `GET`s use.
    fn get_batch(
        &self,
        archive: &str,
        kind: GetKind,
        field_indices: &[u32],
    ) -> Result<Response, String> {
        self.metrics().batch_gets.inc();
        self.metrics().batch_fields.add(field_indices.len() as u64);
        let loaded = self
            .store
            .get(archive)
            .ok_or_else(|| format!("no archive named '{}' is loaded", archive))?;
        for &f in field_indices {
            if f as usize >= loaded.fields().len() {
                return Err(format!(
                    "archive '{}' has {} fields; field {} does not exist",
                    archive,
                    loaded.fields().len(),
                    f
                ));
            }
            if kind == GetKind::Data && loaded.fields()[f as usize].data_elements().is_none() {
                return Err(format!(
                    "field {} is payload-only; request codes instead of data",
                    f
                ));
            }
        }
        let key = |field: u32| CacheKey {
            archive: archive.to_string(),
            generation: loaded.generation,
            field,
            kind,
        };

        // One cache pass for the whole request.
        let cached: Vec<Option<Arc<Vec<u8>>>> = {
            let mut cache = self.lock_cache();
            field_indices.iter().map(|&f| cache.get(&key(f))).collect()
        };

        // Unique cold fields, decoded as one wave.
        let mut missing: Vec<u32> = Vec::new();
        for (&f, hit) in field_indices.iter().zip(&cached) {
            if hit.is_none() && !missing.contains(&f) {
                missing.push(f);
            }
        }
        let mut decoded: Vec<(u32, Arc<Vec<u8>>)> = Vec::with_capacity(missing.len());
        if !missing.is_empty() {
            let produced: Vec<Vec<u8>> = match kind {
                GetKind::Data => {
                    let archives: Vec<&sz::Compressed> = missing
                        .iter()
                        .map(|&f| {
                            loaded.fields()[f as usize]
                                .compressed()
                                .expect("validated above")
                        })
                        .collect();
                    // Wave occupancy and per-field decode timings are recorded by the
                    // codec itself.
                    let batch = self
                        .codec
                        .decompress_batch(&archives)
                        .map_err(|e| format!("batch decode failed: {}", e))?;
                    batch
                        .fields
                        .into_iter()
                        .map(|d| {
                            let mut bytes = Vec::with_capacity(d.data.len() * 4);
                            for v in &d.data {
                                bytes.extend_from_slice(&v.to_le_bytes());
                            }
                            bytes
                        })
                        .collect()
                }
                GetKind::Codes => {
                    let fields: Vec<&FieldHandle> = missing
                        .iter()
                        .map(|&f| &loaded.fields()[f as usize])
                        .collect();
                    let (results, _stats) = self
                        .codec
                        .decode_field_codes_batch(&fields)
                        .map_err(|e| format!("batch decode failed: {}", e))?;
                    results
                        .into_iter()
                        .map(|r| {
                            let mut bytes = Vec::with_capacity(r.symbols.len() * 2);
                            for sym in &r.symbols {
                                bytes.extend_from_slice(&sym.to_le_bytes());
                            }
                            bytes
                        })
                        .collect()
                }
            };
            self.metrics()
                .batch_decoded_fields
                .add(missing.len() as u64);
            let mut cache = self.lock_cache();
            for (&f, bytes) in missing.iter().zip(produced) {
                decoded.push((f, cache.insert(key(f), bytes)));
            }
        }

        let items: Vec<BatchGetItem> = field_indices
            .iter()
            .zip(&cached)
            .map(|(&f, hit)| {
                let (bytes, from_cache) = match hit {
                    Some(bytes) => (Arc::clone(bytes), true),
                    None => (
                        Arc::clone(
                            &decoded
                                .iter()
                                .find(|(idx, _)| *idx == f)
                                .expect("every miss was decoded")
                                .1,
                        ),
                        false,
                    ),
                };
                BatchGetItem {
                    from_cache,
                    elements: bytes.len() as u64 / kind.element_bytes(),
                    bytes: bytes.to_vec(),
                }
            })
            .collect();
        Ok(Response::GetBatch { kind, items })
    }

    fn verify(&self, archive: &str) -> Result<String, String> {
        let loaded = self
            .store
            .get(archive)
            .ok_or_else(|| format!("no archive named '{}' is loaded", archive))?;
        let mut report = String::new();
        let mut failures = 0;
        for (i, field) in loaded.fields().iter().enumerate() {
            let result = self
                .codec
                .decode_field_codes(field)
                .map_err(|e| format!("field {}: decode failed: {}", i, e))?;
            let line = match field.compressed() {
                Some(c) => match c.matches_decoded_crc(&result.symbols) {
                    Some(true) => format!(
                        "field {}: ok ({} symbols, digest {:08x})",
                        i,
                        result.symbols.len(),
                        c.decoded_crc.expect("digest present")
                    ),
                    Some(false) => {
                        failures += 1;
                        format!(
                            "field {}: DIGEST MISMATCH (stored {:08x}, decoded {:08x})",
                            i,
                            c.decoded_crc.expect("digest present"),
                            huffdec_core::crc32_symbols(&result.symbols)
                        )
                    }
                    None => format!(
                        "field {}: ok ({} symbols, no stored digest)",
                        i,
                        result.symbols.len()
                    ),
                },
                None => format!(
                    "field {}: ok ({} symbols, payload-only)",
                    i,
                    result.symbols.len()
                ),
            };
            report.push_str(&line);
            report.push('\n');
        }
        report.push_str(&format!(
            "{}: {} fields, {} digest failures\n",
            archive,
            loaded.fields().len(),
            failures
        ));
        Ok(report)
    }

    fn list_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("archives").begin_array();
        for loaded in self.store.list().iter() {
            w.begin_object();
            w.key("name").str(&loaded.name);
            w.key("path").str(&loaded.path);
            w.key("fields").begin_array();
            for field in loaded.fields() {
                // Prefix each field object with its manifest name (snapshot archives)
                // so clients can resolve names to indices without re-reading the file.
                let info = field.info().to_json();
                match field.name() {
                    Some(name) => {
                        w.begin_object();
                        w.key("name").str(name);
                        w.splice_fields(&info);
                        w.end_object();
                    }
                    None => {
                        w.raw(&info);
                    }
                }
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Renders the legacy `STATS` JSON from one registry snapshot. The document is
    /// byte-compatible with the pre-registry format: per-decoder counts come from the
    /// histogram counts and `simulated_seconds` from the histogram sums.
    fn stats_json(&self) -> String {
        let m = self.metrics_snapshot();
        let decoder_json =
            |w: &mut JsonWriter, key: &str, hists: &[huffdec_metrics::HistogramSnapshot; 4]| {
                w.key(key).begin_object();
                for kind in DecoderKind::all() {
                    let h = &hists[kind.tag() as usize];
                    w.key(kind.name()).begin_object();
                    w.key("count").u64(h.count());
                    w.key("simulated_seconds").f64_sci(h.sum);
                    w.end_object();
                }
                w.end_object();
            };
        let mut w = JsonWriter::with_capacity(1024);
        w.begin_object();
        w.key("backend").str(self.codec.backend_kind().name());
        w.key("device").str(&self.codec.device_name());
        w.key("requests").u64(m.requests);
        w.key("gets").u64(m.gets);
        w.key("archives_loaded").u64(self.store.len() as u64);
        w.key("cache").begin_object();
        w.key("hits").u64(m.cache_hits);
        w.key("misses").u64(m.cache_misses);
        w.key("evictions").u64(m.cache_evictions);
        w.key("insertions").u64(m.cache_insertions);
        w.key("uncacheable").u64(m.cache_uncacheable);
        w.key("used_bytes").u64(m.cache_used_bytes);
        w.key("budget_bytes").u64(m.cache_budget_bytes);
        w.key("entries").u64(m.cache_entries);
        w.end_object();
        decoder_json(&mut w, "full_decodes", &m.decode_seconds);
        decoder_json(&mut w, "index_builds", &m.index_build_seconds);
        decoder_json(&mut w, "partial_decodes", &m.partial_decode_seconds);
        w.key("partial_blocks_decoded")
            .u64(m.partial_blocks_decoded);
        w.key("partial_blocks_total").u64(m.partial_blocks_spanned);
        w.key("batch").begin_object();
        w.key("gets").u64(m.batch_gets);
        w.key("fields").u64(m.batch_fields);
        w.key("decoded_fields").u64(m.batch_decoded_fields);
        w.key("serial_seconds").f64_sci(m.batch_serial_seconds);
        w.key("batched_seconds").f64_sci(m.batch_batched_seconds);
        w.end_object();
        w.end_object();
        w.finish()
    }
}

fn slice_response(
    bytes: &[u8],
    kind: GetKind,
    range: Option<(u64, u64)>,
    elements: u64,
    from_cache: bool,
    partial: bool,
) -> Response {
    match range {
        None => Response::Get {
            kind,
            from_cache,
            partial,
            elements,
            bytes: bytes.to_vec(),
        },
        Some((start, len)) => {
            let eb = kind.element_bytes();
            let lo = (start * eb) as usize;
            let hi = ((start + len) * eb) as usize;
            Response::Get {
                kind,
                from_cache,
                partial,
                elements: len,
                bytes: bytes[lo..hi].to_vec(),
            }
        }
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: Listener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds `addr` and builds the shared state. The daemon does not accept
    /// connections until [`Server::run`].
    pub fn bind(addr: &ListenAddr, config: &ServerConfig) -> std::io::Result<Server> {
        let listener = Listener::bind(addr)?;
        let resolved = listener.local_addr()?;
        let codec = Codec::builder()
            .gpu_config(config.gpu.clone())
            .backend(config.backend)
            .host_threads(config.host_threads)
            .build()
            .expect("default codec configuration is valid");
        // The cache shares the codec's registry: one set of instruments covers the
        // whole daemon.
        let cache = DecodedLru::with_metrics(config.cache_bytes, Arc::clone(codec.metrics()));
        let health_window = codec.metrics().snapshot();
        let state = Arc::new(ServerState {
            codec,
            store: ArchiveStore::new(),
            cache: Mutex::new(cache),
            shutdown: AtomicBool::new(false),
            addr: resolved,
            metrics_addr: Mutex::new(None),
            health_window: Mutex::new(health_window),
        });
        Ok(Server { listener, state })
    }

    /// The resolved listen address (report this to clients; for `tcp:...:0` it carries
    /// the actual port).
    pub fn local_addr(&self) -> ListenAddr {
        self.state.addr.clone()
    }

    /// Handle to the shared state (for in-process loading, stats, and tests).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Serves until a `SHUTDOWN` request arrives, then drains the worker threads.
    pub fn run(self) -> std::io::Result<()> {
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            let conn = self.listener.accept()?;
            if self.state.is_shutting_down() {
                break;
            }
            // Reap finished connection threads as we go: a long-running daemon must
            // not accumulate one JoinHandle per connection it ever served.
            workers.retain(|worker| !worker.is_finished());
            let state = Arc::clone(&self.state);
            workers.push(std::thread::spawn(move || serve_connection(state, conn)));
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Runs one connection's request loop: frames in, frames out, until EOF or shutdown.
fn serve_connection(state: Arc<ServerState>, mut conn: Conn) {
    loop {
        let body = match read_frame(&mut conn, MAX_REQUEST_BYTES) {
            Ok(Some(body)) => body,
            Ok(None) => return, // clean EOF
            Err(_) => return,   // protocol violation: drop the connection
        };
        // Once SHUTDOWN has been accepted, concurrent connections are dropped rather
        // than served: the daemon must be able to exit without waiting for every
        // keepalive client to hang up on its own.
        if state.is_shutting_down() {
            return;
        }
        let response = match Request::decode(&body) {
            Ok(request) => state.handle(&request),
            Err(e) => Response::Error(format!("bad request: {}", e)),
        };
        let shutting_down = matches!(response, Response::ShuttingDown);
        // A response that does not fit a frame (a field decoding past the 1 GiB
        // response ceiling) degrades to a typed error instead of desyncing the stream.
        let mut body = response.encode();
        if body.len() as u64 > MAX_RESPONSE_BYTES as u64 {
            body = Response::Error(format!(
                "response of {} bytes exceeds the {} frame limit; request a range",
                body.len(),
                MAX_RESPONSE_BYTES
            ))
            .encode();
        }
        if write_frame(&mut conn, &body, MAX_RESPONSE_BYTES).is_err() {
            return;
        }
        if shutting_down {
            let _ = conn.flush();
            return;
        }
    }
}
