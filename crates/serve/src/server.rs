//! The `hfzd` daemon: holds hot archives in memory and serves decoded blocks.
//!
//! This is the paper's §V GAMESS scenario turned into a long-running component:
//! archives stay compressed in memory (loaded once, parsed once), clients request
//! decoded fields or ranges over the socket protocol, and a shared bytes-budgeted LRU
//! ([`DecodedLru`]) absorbs the hot set so repeated `GET`s of the same field cost a
//! memcpy while cold fields pay one (simulated-GPU) decode.
//!
//! Concurrency model: one OS thread per connection, all sharing one [`ServerState`].
//! The store uses an `RwLock` (loads are rare, lookups constant), the cache and the
//! counters use `Mutex`es held only for bookkeeping — decodes run outside every lock,
//! so N clients can decode N different cold fields in parallel while cache hits stream
//! past them. The `Gpu` itself is a value-typed simulator and is shared immutably.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use gpu_sim::{Gpu, GpuConfig};
use huffdec_codec::{Codec, FieldHandle};
use huffdec_container::json_escape;
use huffdec_core::DecoderKind;

use crate::cache::{CacheKey, CacheStats, DecodedLru};
use crate::net::{connect, Conn, ListenAddr, Listener};
use crate::protocol::{
    read_frame, write_frame, BatchGetItem, GetKind, Request, Response, MAX_REQUEST_BYTES,
    MAX_RESPONSE_BYTES,
};
use crate::store::{ArchiveStore, LoadedArchive};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Byte budget of the decoded-field LRU cache.
    pub cache_bytes: u64,
    /// Simulated device configuration.
    pub gpu: GpuConfig,
    /// Host threads backing the simulated device's block execution.
    pub host_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cache_bytes: 256 << 20,
            gpu: GpuConfig::v100(),
            host_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

/// Per-decoder decode accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecodeCounter {
    /// Number of decode runs.
    pub count: u64,
    /// Accumulated simulated decode time.
    pub simulated_seconds: f64,
}

/// Request-level counters (the cache keeps its own).
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Total requests handled.
    pub requests: u64,
    /// `GET` requests handled.
    pub gets: u64,
    /// Full-field decodes, per decoder kind (indexed by [`DecoderKind::tag`]).
    pub full_decodes: [DecodeCounter; 4],
    /// Range-decode index builds, per decoder kind.
    pub index_builds: [DecodeCounter; 4],
    /// Partial (range-limited) decodes, per decoder kind.
    pub partial_decodes: [DecodeCounter; 4],
    /// Blocks actually decoded by partial decodes.
    pub partial_blocks_decoded: u64,
    /// Blocks a full decode would have run for those same requests.
    pub partial_blocks_total: u64,
    /// `GETBATCH` requests handled.
    pub batch_gets: u64,
    /// Fields requested across all batch requests (cache hits included).
    pub batch_fields: u64,
    /// Cold fields decoded inside batched waves.
    pub batch_decoded_fields: u64,
    /// What those batched decodes would have cost run serially (simulated seconds).
    pub batch_serial_seconds: f64,
    /// What the batched waves actually cost (simulated seconds).
    pub batch_batched_seconds: f64,
}

/// Shared state of a running daemon.
pub struct ServerState {
    codec: Codec,
    store: ArchiveStore,
    cache: Mutex<DecodedLru>,
    stats: Mutex<ServeStats>,
    shutdown: AtomicBool,
    addr: ListenAddr,
}

impl ServerState {
    /// The facade session requests decode through.
    pub fn codec(&self) -> &Codec {
        &self.codec
    }

    /// The simulated device requests decode on.
    pub fn gpu(&self) -> &Gpu {
        self.codec.gpu()
    }

    /// The archive store (load archives directly through this before/while serving).
    pub fn store(&self) -> &ArchiveStore {
        &self.store
    }

    /// Snapshot of the cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache lock poisoned").stats()
    }

    /// Current cache occupancy in bytes.
    pub fn cache_used_bytes(&self) -> u64 {
        self.cache.lock().expect("cache lock poisoned").used_bytes()
    }

    /// Snapshot of the request counters.
    pub fn serve_stats(&self) -> ServeStats {
        self.stats.lock().expect("stats lock poisoned").clone()
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and wakes the accept loop.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop is blocked in `accept`; a throwaway connection unblocks it.
        let _ = connect(&self.addr);
    }

    fn with_stats<R>(&self, f: impl FnOnce(&mut ServeStats) -> R) -> R {
        f(&mut self.stats.lock().expect("stats lock poisoned"))
    }

    /// Handles one request. Public so in-process consumers (tests, examples) can drive
    /// the daemon without a socket.
    pub fn handle(&self, request: &Request) -> Response {
        self.with_stats(|s| s.requests += 1);
        match request {
            Request::List => Response::List(self.list_json()),
            Request::Stats => Response::Stats(self.stats_json()),
            Request::Shutdown => {
                self.request_shutdown();
                Response::ShuttingDown
            }
            Request::Load { name, path } => match self.store.load(name, path) {
                Ok(loaded) => {
                    // A re-load under the same name must not serve stale decodes.
                    self.cache
                        .lock()
                        .expect("cache lock poisoned")
                        .invalidate_archive(name);
                    Response::Loaded {
                        fields: loaded.fields().len() as u32,
                    }
                }
                Err(e) => Response::Error(format!("cannot load '{}': {}", name, e)),
            },
            Request::Verify { archive } => match self.verify(archive) {
                Ok(report) => Response::Verify(report),
                Err(message) => Response::Error(message),
            },
            Request::Get {
                archive,
                field,
                kind,
                range,
            } => {
                self.with_stats(|s| s.gets += 1);
                match self.get(archive, *field, *kind, *range) {
                    Ok(response) => response,
                    Err(message) => Response::Error(message),
                }
            }
            Request::GetBatch {
                archive,
                kind,
                fields,
            } => match self.get_batch(archive, *kind, fields) {
                Ok(response) => response,
                Err(message) => Response::Error(message),
            },
        }
    }

    fn lookup(&self, archive: &str, field: u32) -> Result<(Arc<LoadedArchive>, usize), String> {
        let loaded = self
            .store
            .get(archive)
            .ok_or_else(|| format!("no archive named '{}' is loaded", archive))?;
        let index = field as usize;
        if index >= loaded.fields().len() {
            return Err(format!(
                "archive '{}' has {} fields; field {} does not exist",
                archive,
                loaded.fields().len(),
                field
            ));
        }
        Ok((loaded, index))
    }

    fn record_decode(
        &self,
        slot: fn(&mut ServeStats) -> &mut [DecodeCounter; 4],
        kind: DecoderKind,
        seconds: f64,
    ) {
        self.with_stats(|s| {
            let counter = &mut slot(s)[kind.tag() as usize];
            counter.count += 1;
            counter.simulated_seconds += seconds;
        });
    }

    /// Decodes the full representation `kind` of a field (cache-filling slow path).
    fn decode_full(&self, field: &FieldHandle, kind: GetKind) -> Result<Vec<u8>, String> {
        let decoder = field.decoder();
        match kind {
            GetKind::Data => {
                let decompressed = self
                    .codec
                    .decompress_field(field)
                    .map_err(|e| format!("decode failed: {}", e))?;
                self.record_decode(
                    |s| &mut s.full_decodes,
                    decoder,
                    decompressed.stats.total_seconds,
                );
                let mut bytes = Vec::with_capacity(decompressed.data.len() * 4);
                for v in &decompressed.data {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                Ok(bytes)
            }
            GetKind::Codes => {
                let result = self
                    .codec
                    .decode_field_codes(field)
                    .map_err(|e| format!("decode failed: {}", e))?;
                self.record_decode(
                    |s| &mut s.full_decodes,
                    decoder,
                    result.timings.total_seconds(),
                );
                let mut bytes = Vec::with_capacity(result.symbols.len() * 2);
                for s in &result.symbols {
                    bytes.extend_from_slice(&s.to_le_bytes());
                }
                Ok(bytes)
            }
        }
    }

    fn get(
        &self,
        archive: &str,
        field_index: u32,
        kind: GetKind,
        range: Option<(u64, u64)>,
    ) -> Result<Response, String> {
        let (loaded, index) = self.lookup(archive, field_index)?;
        let field = &loaded.fields()[index];
        let elements = match kind {
            GetKind::Data => field.data_elements().ok_or_else(|| {
                "archive is payload-only; request codes instead of data".to_string()
            })?,
            GetKind::Codes => field.code_elements(),
        };
        if let Some((start, len)) = range {
            let valid = start
                .checked_add(len)
                .map(|end| end <= elements)
                .unwrap_or(false);
            if !valid {
                return Err(format!(
                    "range [{}, {}+{}) exceeds the field's {} elements",
                    start, start, len, elements
                ));
            }
        }
        let key = CacheKey {
            archive: archive.to_string(),
            generation: loaded.generation,
            field: field_index,
            kind,
        };

        // Fast path: the full representation is cached; any range is a slice of it.
        let cached = self.cache.lock().expect("cache lock poisoned").get(&key);
        if let Some(bytes) = cached {
            return Ok(slice_response(&bytes, kind, range, elements, true, false));
        }

        // Miss. Ranged code requests take the partial path: decode only the
        // overlapping blocks via the field's (cached) decode index. The result is not
        // inserted — it is a fragment, and caching fragments would let a sweep of
        // small ranges evict whole hot fields.
        if let (GetKind::Codes, Some((start, len))) = (kind, range) {
            let decoder = field.decoder();
            let built_before = field.prepared_ready();
            let prepared = self
                .codec
                .prepare_field(field)
                .map_err(|e| format!("decode index failed: {}", e))?;
            if !built_before {
                self.record_decode(
                    |s| &mut s.index_builds,
                    decoder,
                    prepared.timings.total_seconds(),
                );
            }
            let r = self
                .codec
                .decompress_range(field, start, len)
                .map_err(|e| format!("range decode failed: {}", e))?;
            self.record_decode(
                |s| &mut s.partial_decodes,
                decoder,
                r.timings.total_seconds(),
            );
            self.with_stats(|s| {
                s.partial_blocks_decoded += r.decoded_blocks as u64;
                s.partial_blocks_total += r.total_blocks as u64;
            });
            let mut bytes = Vec::with_capacity(r.symbols.len() * 2);
            for sym in &r.symbols {
                bytes.extend_from_slice(&sym.to_le_bytes());
            }
            return Ok(Response::Get {
                kind,
                from_cache: false,
                partial: true,
                elements: len,
                bytes,
            });
        }

        // Full decode (data requests also land here for ranges: Lorenzo reconstruction
        // is a prefix scan, so a data range needs the whole field once — after which
        // the cache serves every later range as a slice).
        let bytes = self.decode_full(field, kind)?;
        let bytes = self
            .cache
            .lock()
            .expect("cache lock poisoned")
            .insert(key, bytes);
        Ok(slice_response(&bytes, kind, range, elements, false, false))
    }

    /// Serves a multi-field fetch: cache hits stream straight out, and *all* misses are
    /// decoded as one batched wave ([`Codec::decompress_batch`] /
    /// [`Codec::decode_field_codes_batch`]) instead of N serial decodes, then inserted into
    /// the same LRU single-field `GET`s use.
    fn get_batch(
        &self,
        archive: &str,
        kind: GetKind,
        field_indices: &[u32],
    ) -> Result<Response, String> {
        self.with_stats(|s| {
            s.batch_gets += 1;
            s.batch_fields += field_indices.len() as u64;
        });
        let loaded = self
            .store
            .get(archive)
            .ok_or_else(|| format!("no archive named '{}' is loaded", archive))?;
        for &f in field_indices {
            if f as usize >= loaded.fields().len() {
                return Err(format!(
                    "archive '{}' has {} fields; field {} does not exist",
                    archive,
                    loaded.fields().len(),
                    f
                ));
            }
            if kind == GetKind::Data && loaded.fields()[f as usize].data_elements().is_none() {
                return Err(format!(
                    "field {} is payload-only; request codes instead of data",
                    f
                ));
            }
        }
        let key = |field: u32| CacheKey {
            archive: archive.to_string(),
            generation: loaded.generation,
            field,
            kind,
        };

        // One cache pass for the whole request.
        let cached: Vec<Option<Arc<Vec<u8>>>> = {
            let mut cache = self.cache.lock().expect("cache lock poisoned");
            field_indices.iter().map(|&f| cache.get(&key(f))).collect()
        };

        // Unique cold fields, decoded as one wave.
        let mut missing: Vec<u32> = Vec::new();
        for (&f, hit) in field_indices.iter().zip(&cached) {
            if hit.is_none() && !missing.contains(&f) {
                missing.push(f);
            }
        }
        let mut decoded: Vec<(u32, Arc<Vec<u8>>)> = Vec::with_capacity(missing.len());
        if !missing.is_empty() {
            let produced: Vec<Vec<u8>> = match kind {
                GetKind::Data => {
                    let archives: Vec<&sz::Compressed> = missing
                        .iter()
                        .map(|&f| {
                            loaded.fields()[f as usize]
                                .compressed()
                                .expect("validated above")
                        })
                        .collect();
                    let batch = self
                        .codec
                        .decompress_batch(&archives)
                        .map_err(|e| format!("batch decode failed: {}", e))?;
                    self.record_batch_wave(batch.stats.serial_seconds, batch.stats.batched_seconds);
                    for (&f, d) in missing.iter().zip(&batch.fields) {
                        self.record_decode(
                            |s| &mut s.full_decodes,
                            loaded.fields()[f as usize].decoder(),
                            d.stats.total_seconds,
                        );
                    }
                    batch
                        .fields
                        .into_iter()
                        .map(|d| {
                            let mut bytes = Vec::with_capacity(d.data.len() * 4);
                            for v in &d.data {
                                bytes.extend_from_slice(&v.to_le_bytes());
                            }
                            bytes
                        })
                        .collect()
                }
                GetKind::Codes => {
                    let fields: Vec<&FieldHandle> = missing
                        .iter()
                        .map(|&f| &loaded.fields()[f as usize])
                        .collect();
                    let (results, stats) = self
                        .codec
                        .decode_field_codes_batch(&fields)
                        .map_err(|e| format!("batch decode failed: {}", e))?;
                    self.record_batch_wave(stats.serial_seconds, stats.batched_seconds);
                    for (&f, r) in missing.iter().zip(&results) {
                        self.record_decode(
                            |s| &mut s.full_decodes,
                            loaded.fields()[f as usize].decoder(),
                            r.timings.total_seconds(),
                        );
                    }
                    results
                        .into_iter()
                        .map(|r| {
                            let mut bytes = Vec::with_capacity(r.symbols.len() * 2);
                            for sym in &r.symbols {
                                bytes.extend_from_slice(&sym.to_le_bytes());
                            }
                            bytes
                        })
                        .collect()
                }
            };
            self.with_stats(|s| s.batch_decoded_fields += missing.len() as u64);
            let mut cache = self.cache.lock().expect("cache lock poisoned");
            for (&f, bytes) in missing.iter().zip(produced) {
                decoded.push((f, cache.insert(key(f), bytes)));
            }
        }

        let items: Vec<BatchGetItem> = field_indices
            .iter()
            .zip(&cached)
            .map(|(&f, hit)| {
                let (bytes, from_cache) = match hit {
                    Some(bytes) => (Arc::clone(bytes), true),
                    None => (
                        Arc::clone(
                            &decoded
                                .iter()
                                .find(|(idx, _)| *idx == f)
                                .expect("every miss was decoded")
                                .1,
                        ),
                        false,
                    ),
                };
                BatchGetItem {
                    from_cache,
                    elements: bytes.len() as u64 / kind.element_bytes(),
                    bytes: bytes.to_vec(),
                }
            })
            .collect();
        Ok(Response::GetBatch { kind, items })
    }

    fn record_batch_wave(&self, serial_seconds: f64, batched_seconds: f64) {
        self.with_stats(|s| {
            s.batch_serial_seconds += serial_seconds;
            s.batch_batched_seconds += batched_seconds;
        });
    }

    fn verify(&self, archive: &str) -> Result<String, String> {
        let loaded = self
            .store
            .get(archive)
            .ok_or_else(|| format!("no archive named '{}' is loaded", archive))?;
        let mut report = String::new();
        let mut failures = 0;
        for (i, field) in loaded.fields().iter().enumerate() {
            let decoder = field.decoder();
            let result = self
                .codec
                .decode_field_codes(field)
                .map_err(|e| format!("field {}: decode failed: {}", i, e))?;
            self.record_decode(
                |s| &mut s.full_decodes,
                decoder,
                result.timings.total_seconds(),
            );
            let line = match field.compressed() {
                Some(c) => match c.matches_decoded_crc(&result.symbols) {
                    Some(true) => format!(
                        "field {}: ok ({} symbols, digest {:08x})",
                        i,
                        result.symbols.len(),
                        c.decoded_crc.expect("digest present")
                    ),
                    Some(false) => {
                        failures += 1;
                        format!(
                            "field {}: DIGEST MISMATCH (stored {:08x}, decoded {:08x})",
                            i,
                            c.decoded_crc.expect("digest present"),
                            huffdec_core::crc32_symbols(&result.symbols)
                        )
                    }
                    None => format!(
                        "field {}: ok ({} symbols, no stored digest)",
                        i,
                        result.symbols.len()
                    ),
                },
                None => format!(
                    "field {}: ok ({} symbols, payload-only)",
                    i,
                    result.symbols.len()
                ),
            };
            report.push_str(&line);
            report.push('\n');
        }
        report.push_str(&format!(
            "{}: {} fields, {} digest failures\n",
            archive,
            loaded.fields().len(),
            failures
        ));
        Ok(report)
    }

    fn list_json(&self) -> String {
        let mut s = String::from("{\"archives\":[");
        for (i, loaded) in self.store.list().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"path\":\"{}\",\"fields\":[",
                json_escape(&loaded.name),
                json_escape(&loaded.path)
            ));
            for (j, field) in loaded.fields().iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                // Prefix each field object with its manifest name (snapshot archives)
                // so clients can resolve names to indices without re-reading the file.
                let info = field.info().to_json();
                match field.name() {
                    Some(name) => s.push_str(&format!(
                        "{{\"name\":\"{}\",{}",
                        json_escape(name),
                        &info[1..]
                    )),
                    None => s.push_str(&info),
                }
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }

    fn stats_json(&self) -> String {
        let cache = {
            let c = self.cache.lock().expect("cache lock poisoned");
            format!(
                "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"insertions\":{},\
                 \"uncacheable\":{},\"used_bytes\":{},\"budget_bytes\":{},\"entries\":{}}}",
                c.stats().hits,
                c.stats().misses,
                c.stats().evictions,
                c.stats().insertions,
                c.stats().uncacheable,
                c.used_bytes(),
                c.budget_bytes(),
                c.len()
            )
        };
        let stats = self.serve_stats();
        let decoder_json = |counters: &[DecodeCounter; 4]| {
            let mut s = String::from("{");
            for (i, kind) in DecoderKind::all().iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let c = counters[kind.tag() as usize];
                s.push_str(&format!(
                    "\"{}\":{{\"count\":{},\"simulated_seconds\":{:e}}}",
                    json_escape(kind.name()),
                    c.count,
                    c.simulated_seconds
                ));
            }
            s.push('}');
            s
        };
        format!(
            "{{\"requests\":{},\"gets\":{},\"archives_loaded\":{},\"cache\":{},\
             \"full_decodes\":{},\"index_builds\":{},\"partial_decodes\":{},\
             \"partial_blocks_decoded\":{},\"partial_blocks_total\":{},\
             \"batch\":{{\"gets\":{},\"fields\":{},\"decoded_fields\":{},\
             \"serial_seconds\":{:e},\"batched_seconds\":{:e}}}}}",
            stats.requests,
            stats.gets,
            self.store.len(),
            cache,
            decoder_json(&stats.full_decodes),
            decoder_json(&stats.index_builds),
            decoder_json(&stats.partial_decodes),
            stats.partial_blocks_decoded,
            stats.partial_blocks_total,
            stats.batch_gets,
            stats.batch_fields,
            stats.batch_decoded_fields,
            stats.batch_serial_seconds,
            stats.batch_batched_seconds,
        )
    }
}

fn slice_response(
    bytes: &[u8],
    kind: GetKind,
    range: Option<(u64, u64)>,
    elements: u64,
    from_cache: bool,
    partial: bool,
) -> Response {
    match range {
        None => Response::Get {
            kind,
            from_cache,
            partial,
            elements,
            bytes: bytes.to_vec(),
        },
        Some((start, len)) => {
            let eb = kind.element_bytes();
            let lo = (start * eb) as usize;
            let hi = ((start + len) * eb) as usize;
            Response::Get {
                kind,
                from_cache,
                partial,
                elements: len,
                bytes: bytes[lo..hi].to_vec(),
            }
        }
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: Listener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds `addr` and builds the shared state. The daemon does not accept
    /// connections until [`Server::run`].
    pub fn bind(addr: &ListenAddr, config: &ServerConfig) -> std::io::Result<Server> {
        let listener = Listener::bind(addr)?;
        let resolved = listener.local_addr()?;
        let state = Arc::new(ServerState {
            codec: Codec::builder()
                .gpu_config(config.gpu.clone())
                .host_threads(config.host_threads)
                .build()
                .expect("default codec configuration is valid"),
            store: ArchiveStore::new(),
            cache: Mutex::new(DecodedLru::new(config.cache_bytes)),
            stats: Mutex::new(ServeStats::default()),
            shutdown: AtomicBool::new(false),
            addr: resolved,
        });
        Ok(Server { listener, state })
    }

    /// The resolved listen address (report this to clients; for `tcp:...:0` it carries
    /// the actual port).
    pub fn local_addr(&self) -> ListenAddr {
        self.state.addr.clone()
    }

    /// Handle to the shared state (for in-process loading, stats, and tests).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Serves until a `SHUTDOWN` request arrives, then drains the worker threads.
    pub fn run(self) -> std::io::Result<()> {
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            let conn = self.listener.accept()?;
            if self.state.is_shutting_down() {
                break;
            }
            // Reap finished connection threads as we go: a long-running daemon must
            // not accumulate one JoinHandle per connection it ever served.
            workers.retain(|worker| !worker.is_finished());
            let state = Arc::clone(&self.state);
            workers.push(std::thread::spawn(move || serve_connection(state, conn)));
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Runs one connection's request loop: frames in, frames out, until EOF or shutdown.
fn serve_connection(state: Arc<ServerState>, mut conn: Conn) {
    loop {
        let body = match read_frame(&mut conn, MAX_REQUEST_BYTES) {
            Ok(Some(body)) => body,
            Ok(None) => return, // clean EOF
            Err(_) => return,   // protocol violation: drop the connection
        };
        let response = match Request::decode(&body) {
            Ok(request) => state.handle(&request),
            Err(e) => Response::Error(format!("bad request: {}", e)),
        };
        let shutting_down = matches!(response, Response::ShuttingDown);
        // A response that does not fit a frame (a field decoding past the 1 GiB
        // response ceiling) degrades to a typed error instead of desyncing the stream.
        let mut body = response.encode();
        if body.len() as u64 > MAX_RESPONSE_BYTES as u64 {
            body = Response::Error(format!(
                "response of {} bytes exceeds the {} frame limit; request a range",
                body.len(),
                MAX_RESPONSE_BYTES
            ))
            .encode();
        }
        if write_frame(&mut conn, &body, MAX_RESPONSE_BYTES).is_err() {
            return;
        }
        if shutting_down {
            let _ = conn.flush();
            return;
        }
    }
}
