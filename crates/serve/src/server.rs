//! The `hfzd` daemon: holds hot archives in memory and serves decoded blocks.
//!
//! This is the paper's §V GAMESS scenario turned into a long-running component:
//! archives stay compressed in memory (loaded once, parsed once), clients request
//! decoded fields or ranges over the socket protocol, and a shared bytes-budgeted LRU
//! ([`DecodedLru`]) absorbs the hot set so repeated `GET`s of the same field cost a
//! memcpy while cold fields pay one (simulated-GPU) decode.
//!
//! Concurrency model: an **event loop**. One reactor thread owns every connection
//! (non-blocking sockets, readiness by polling), decodes frames, and answers cheap
//! requests inline. Every full-field cache miss becomes a *decode future*: the reactor
//! submits it to the scheduler (`sched::Scheduler`) and parks a ticket in the connection's reply
//! queue. A single wave-worker thread drains the scheduler — concurrent misses of the
//! same field coalesce into one decode (single-flight), misses of distinct fields that
//! land within one scheduling tick merge into one batched wave through the codec's
//! wave API. Long blocking work that cannot batch (LOAD, VERIFY, ranged-codes partial
//! decodes) runs on short-lived job threads so it never stalls the reactor.
//!
//! Backpressure: the scheduler's pending queue is bounded. When a miss would overflow
//! it, the daemon answers the typed `BUSY` reply instead of queueing unbounded work;
//! clients surface it as [`crate::ClientError::Busy`] and the router retries after a
//! short backoff.
//!
//! Observability: all counting happens in the codec's [`Metrics`] registry — the codec
//! records decode/encode timings as it works, the cache records hits and evictions into
//! the same registry, the scheduler records coalescing/wave/shed counters, and the
//! request loop adds request-level counters. `STATS` and the HTTP `/metrics` endpoint
//! are two renders of one snapshot (the `STATS` document is unchanged from the
//! blocking daemon — scheduler observability is Prometheus-only). Locks are recovered
//! from poisoning (`PoisonError::into_inner`): a panicking job thread must not take
//! down stats or health reporting for the whole daemon.

use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use gpu_sim::GpuConfig;
use huffdec_backend::{Backend, BackendKind};
use huffdec_codec::{Codec, FieldHandle};
use huffdec_container::JsonWriter;
use huffdec_core::DecoderKind;
use huffdec_metrics::{Metrics, MetricsSnapshot};

use crate::cache::{CacheKey, CacheStats, DecodedLru};
use crate::net::{connect, Conn, ListenAddr, Listener};
use crate::protocol::{
    BatchGetItem, GetKind, Request, Response, MAX_REQUEST_BYTES, MAX_RESPONSE_BYTES,
};
use crate::sched::{DecodeTask, FlightSlot, Scheduler};
use crate::store::{ArchiveStore, LoadedArchive};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Byte budget of the decoded-field LRU cache.
    pub cache_bytes: u64,
    /// Simulated device configuration.
    pub gpu: GpuConfig,
    /// Execution backend requests decode on (default: the `HFZ_BACKEND` environment
    /// variable, falling back to the simulated backend).
    pub backend: BackendKind,
    /// Host threads backing the simulated device's block execution.
    pub host_threads: usize,
    /// Admission bound on not-yet-started decodes: a miss that would push the
    /// scheduler's pending queue past this answers `BUSY` instead of queueing.
    pub queue_bound: usize,
    /// How long the wave worker holds a wave open so concurrent misses of distinct
    /// fields can merge into one batched decode.
    pub wave_tick: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cache_bytes: 256 << 20,
            gpu: GpuConfig::v100(),
            backend: BackendKind::from_env(),
            host_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_bound: 256,
            wave_tick: Duration::from_millis(1),
        }
    }
}

/// Daemon health, as the HTTP sidecar's `/healthz` endpoint reports it.
///
/// Degradation is judged over the **last window** — the delta since the previous
/// [`ServerState::health`] call — so a burst of decode errors or cache thrash clears
/// once a quiet window passes, instead of latching forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Health {
    /// Serving normally.
    Healthy,
    /// Still serving, but the last window saw decode errors or LRU thrash.
    Degraded(String),
    /// Not serving (shutdown in progress).
    Unhealthy(String),
}

/// Shared state of a running daemon.
#[derive(Debug)]
pub struct ServerState {
    codec: Codec,
    store: ArchiveStore,
    cache: Mutex<DecodedLru>,
    sched: Scheduler,
    shutdown: AtomicBool,
    addr: ListenAddr,
    /// Resolved address of the HTTP metrics sidecar, when one is bound (shutdown pokes
    /// it the same way it pokes the protocol listener).
    metrics_addr: Mutex<Option<ListenAddr>>,
    /// The metrics snapshot taken by the previous health check — the baseline the next
    /// check's window is measured against.
    health_window: Mutex<MetricsSnapshot>,
}

impl ServerState {
    /// The facade session requests decode through.
    pub fn codec(&self) -> &Codec {
        &self.codec
    }

    /// The execution backend requests decode on.
    pub fn backend(&self) -> &dyn Backend {
        self.codec.backend()
    }

    /// The archive store. Prefer [`ServerState::load_archive`] for loading — it also
    /// invalidates stale cache entries and keeps the loaded-archives gauge current.
    pub fn store(&self) -> &ArchiveStore {
        &self.store
    }

    /// The metrics registry every component of this daemon records into.
    pub fn metrics(&self) -> &Arc<Metrics> {
        self.codec.metrics()
    }

    /// One coherent read of every instrument.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics().snapshot()
    }

    /// Locks the cache, recovering from poisoning: the LRU's invariants are maintained
    /// per-operation, so a thread that panicked elsewhere while holding the lock must
    /// not wedge every later request.
    fn lock_cache(&self) -> MutexGuard<'_, DecodedLru> {
        self.cache.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Snapshot of the cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.lock_cache().stats()
    }

    /// Current cache occupancy in bytes.
    pub fn cache_used_bytes(&self) -> u64 {
        self.lock_cache().used_bytes()
    }

    /// Loads (or replaces) an archive: parses through the store, drops any cache
    /// entries of a replaced archive, and updates the loaded-archives gauge.
    pub fn load_archive(
        &self,
        name: &str,
        path: &str,
    ) -> Result<Arc<LoadedArchive>, huffdec_codec::HfzError> {
        let loaded = self.store.load(name, path)?;
        // A re-load under the same name must not serve stale decodes.
        self.lock_cache().invalidate_archive(name);
        self.metrics().archives_loaded.set(self.store.len() as u64);
        Ok(loaded)
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown: stops the scheduler (failing still-queued decodes so no
    /// waiter hangs), and wakes the accept loops (protocol and, when bound, the HTTP
    /// metrics sidecar).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.sched.stop();
        // The sidecar's accept loop blocks in `accept`; throwaway connections unblock
        // it (and give the reactor's poll loop an immediate reason to wake).
        let _ = connect(&self.addr);
        let metrics_addr = self
            .metrics_addr
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        if let Some(addr) = metrics_addr {
            let _ = connect(&addr);
        }
    }

    /// Records the HTTP metrics sidecar's resolved address so shutdown can poke it.
    pub(crate) fn set_metrics_addr(&self, addr: ListenAddr) {
        *self.metrics_addr.lock().unwrap_or_else(|p| p.into_inner()) = Some(addr);
    }

    /// Evaluates daemon health for `/healthz`: unhealthy during shutdown, degraded when
    /// the window since the previous check saw decode errors or cache thrash
    /// (evictions with misses outnumbering hits), healthy otherwise.
    pub fn health(&self) -> Health {
        if self.is_shutting_down() {
            return Health::Unhealthy("shutting down".to_string());
        }
        let current = self.metrics_snapshot();
        let prev = {
            let mut window = self.health_window.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::replace(&mut *window, current.clone())
        };
        let errors = current.decode_errors.saturating_sub(prev.decode_errors);
        if errors > 0 {
            return Health::Degraded(format!("{} decode errors in the last window", errors));
        }
        let evictions = current.cache_evictions.saturating_sub(prev.cache_evictions);
        let hits = current.cache_hits.saturating_sub(prev.cache_hits);
        let misses = current.cache_misses.saturating_sub(prev.cache_misses);
        if evictions > 0 && misses > hits {
            return Health::Degraded(format!(
                "cache thrash in the last window: {} evictions, {} misses vs {} hits",
                evictions, misses, hits
            ));
        }
        Health::Healthy
    }

    /// Handles one request to completion, blocking until its decode (if any) lands.
    /// Public so in-process consumers (tests, examples) can drive the daemon without a
    /// socket; the wire path uses the non-blocking `respond` and polls instead.
    pub fn handle(self: &Arc<Self>, request: &Request) -> Response {
        match self.respond(request) {
            Async::Ready(response) => response,
            Async::Pending(ticket) => ticket.run_and_wait(),
        }
    }

    /// Starts one request: cheap requests (and validation failures) resolve
    /// immediately, everything that must decode or block returns a [`Ticket`] the
    /// caller waits on or polls.
    pub(crate) fn respond(self: &Arc<Self>, request: &Request) -> Async {
        self.metrics().requests.inc();
        match request {
            Request::List => Async::Ready(Response::List(self.list_json())),
            Request::Stats => Async::Ready(Response::Stats(self.stats_json())),
            Request::Metrics => Async::Ready(Response::Metrics(self.metrics().render_prometheus())),
            Request::Shutdown => {
                self.request_shutdown();
                Async::Ready(Response::ShuttingDown)
            }
            Request::Load { name, path } => {
                let name = name.clone();
                let path = path.clone();
                self.job(move |state| match state.load_archive(&name, &path) {
                    Ok(loaded) => Response::Loaded {
                        fields: loaded.fields().len() as u32,
                    },
                    Err(e) => Response::Error(format!("cannot load '{}': {}", name, e)),
                })
            }
            Request::Verify { archive } => {
                let archive = archive.clone();
                self.job(move |state| match state.verify(&archive) {
                    Ok(report) => Response::Verify(report),
                    Err(message) => Response::Error(message),
                })
            }
            Request::Get {
                archive,
                field,
                kind,
                range,
            } => {
                self.metrics().gets.inc();
                match self.get(archive, *field, *kind, *range) {
                    Ok(pending) => pending,
                    Err(message) => Async::Ready(Response::Error(message)),
                }
            }
            Request::GetBatch {
                archive,
                kind,
                fields,
            } => match self.get_batch(archive, *kind, fields) {
                Ok(pending) => pending,
                Err(message) => Async::Ready(Response::Error(message)),
            },
        }
    }

    /// Packages blocking work (LOAD, VERIFY, partial decodes) as a ticket: the
    /// reactor spawns the closure on a short-lived job thread, the blocking
    /// [`ServerState::handle`] path just runs it inline.
    fn job(
        self: &Arc<Self>,
        work: impl FnOnce(&ServerState) -> Response + Send + 'static,
    ) -> Async {
        let slot = Arc::new(JobSlot::default());
        let state = Arc::clone(self);
        let fill = Arc::clone(&slot);
        Async::Pending(Ticket {
            waiter: Waiter::Job(slot),
            work: Some(Box::new(move || fill.fill(work(&state)))),
        })
    }

    fn lookup(&self, archive: &str, field: u32) -> Result<(Arc<LoadedArchive>, usize), String> {
        let loaded = self
            .store
            .get(archive)
            .ok_or_else(|| format!("no archive named '{}' is loaded", archive))?;
        let index = field as usize;
        if index >= loaded.fields().len() {
            return Err(format!(
                "archive '{}' has {} fields; field {} does not exist",
                archive,
                loaded.fields().len(),
                field
            ));
        }
        Ok((loaded, index))
    }

    fn get(
        self: &Arc<Self>,
        archive: &str,
        field_index: u32,
        kind: GetKind,
        range: Option<(u64, u64)>,
    ) -> Result<Async, String> {
        let (loaded, index) = self.lookup(archive, field_index)?;
        let field = &loaded.fields()[index];
        let elements = match kind {
            GetKind::Data => field.data_elements().ok_or_else(|| {
                "archive is payload-only; request codes instead of data".to_string()
            })?,
            GetKind::Codes => field.code_elements(),
        };
        if let Some((start, len)) = range {
            let valid = start
                .checked_add(len)
                .map(|end| end <= elements)
                .unwrap_or(false);
            if !valid {
                return Err(format!(
                    "range [{}, {}+{}) exceeds the field's {} elements",
                    start, start, len, elements
                ));
            }
        }
        let key = CacheKey {
            archive: archive.to_string(),
            generation: loaded.generation,
            field: field_index,
            kind,
        };

        // Fast path: the full representation is cached; any range is a slice of it.
        let cached = self.lock_cache().get(&key);
        if let Some(bytes) = cached {
            return Ok(Async::Ready(slice_response(
                &bytes, kind, range, elements, true, false,
            )));
        }

        // Miss. Ranged code requests take the partial path: decode only the
        // overlapping blocks via the field's (cached) decode index. The result is not
        // inserted — it is a fragment, and caching fragments would let a sweep of
        // small ranges evict whole hot fields. Partial decodes run as jobs, not waves:
        // they are already sub-linear in field size and do not batch. Index-build and
        // partial-decode timings are recorded inside the codec.
        if let (GetKind::Codes, Some((start, len))) = (kind, range) {
            return Ok(self.job(move |state| {
                match state
                    .codec
                    .decompress_range(&loaded.fields()[index], start, len)
                {
                    Ok(r) => {
                        let mut bytes = Vec::with_capacity(r.symbols.len() * 2);
                        for sym in &r.symbols {
                            bytes.extend_from_slice(&sym.to_le_bytes());
                        }
                        Response::Get {
                            kind,
                            from_cache: false,
                            partial: true,
                            elements: len,
                            bytes,
                        }
                    }
                    Err(e) => Response::Error(format!("range decode failed: {}", e)),
                }
            }));
        }

        // Full decode (data requests also land here for ranges: Lorenzo reconstruction
        // is a prefix scan, so a data range needs the whole field once — after which
        // the cache serves every later range as a slice). The decode goes through the
        // scheduler: a concurrent miss of the same field joins this flight instead of
        // decoding twice, and misses of other fields in the same tick share one wave.
        match self.sched.submit_group(&[(key, loaded, index)]) {
            None => Ok(Async::Ready(Response::Busy)),
            Some(outcomes) => {
                let slot = outcomes
                    .into_iter()
                    .next()
                    .expect("one want, one slot")
                    .slot;
                Ok(Async::Pending(Ticket {
                    waiter: Waiter::Flight {
                        slot,
                        kind,
                        range,
                        elements,
                    },
                    work: None,
                }))
            }
        }
    }

    /// Serves a multi-field fetch: cache hits stream straight out, and all misses are
    /// submitted to the scheduler as one group — so they decode as one batched wave
    /// (possibly merged with other requests' misses from the same tick), and fields
    /// already in flight for someone else are joined rather than re-decoded.
    fn get_batch(
        self: &Arc<Self>,
        archive: &str,
        kind: GetKind,
        field_indices: &[u32],
    ) -> Result<Async, String> {
        self.metrics().batch_gets.inc();
        self.metrics().batch_fields.add(field_indices.len() as u64);
        let loaded = self
            .store
            .get(archive)
            .ok_or_else(|| format!("no archive named '{}' is loaded", archive))?;
        for &f in field_indices {
            if f as usize >= loaded.fields().len() {
                return Err(format!(
                    "archive '{}' has {} fields; field {} does not exist",
                    archive,
                    loaded.fields().len(),
                    f
                ));
            }
            if kind == GetKind::Data && loaded.fields()[f as usize].data_elements().is_none() {
                return Err(format!(
                    "field {} is payload-only; request codes instead of data",
                    f
                ));
            }
        }
        let key = |field: u32| CacheKey {
            archive: archive.to_string(),
            generation: loaded.generation,
            field,
            kind,
        };

        // One cache pass for the whole request.
        let cached: Vec<Option<Arc<Vec<u8>>>> = {
            let mut cache = self.lock_cache();
            field_indices.iter().map(|&f| cache.get(&key(f))).collect()
        };

        // Unique cold fields, submitted as one admission group. Duplicates within the
        // request share the one flight without a second submission.
        let mut missing: Vec<u32> = Vec::new();
        for (&f, hit) in field_indices.iter().zip(&cached) {
            if hit.is_none() && !missing.contains(&f) {
                missing.push(f);
            }
        }
        let mut flights: Vec<(u32, Arc<FlightSlot>)> = Vec::with_capacity(missing.len());
        if !missing.is_empty() {
            let wants: Vec<(CacheKey, Arc<LoadedArchive>, usize)> = missing
                .iter()
                .map(|&f| (key(f), Arc::clone(&loaded), f as usize))
                .collect();
            let outcomes = match self.sched.submit_group(&wants) {
                None => return Ok(Async::Ready(Response::Busy)),
                Some(outcomes) => outcomes,
            };
            // Count only the decodes this request put in flight — joins of another
            // request's flight are its decodes, not ours.
            let created = outcomes.iter().filter(|o| o.created).count();
            self.metrics().batch_decoded_fields.add(created as u64);
            for (&f, outcome) in missing.iter().zip(outcomes) {
                flights.push((f, outcome.slot));
            }
        }

        let parts: Vec<BatchPart> = field_indices
            .iter()
            .zip(&cached)
            .map(|(&f, hit)| match hit {
                Some(bytes) => BatchPart::Hit(Arc::clone(bytes)),
                None => BatchPart::Wait(Arc::clone(
                    &flights
                        .iter()
                        .find(|(idx, _)| *idx == f)
                        .expect("every miss was submitted")
                        .1,
                )),
            })
            .collect();
        Ok(Async::Pending(Ticket {
            waiter: Waiter::Batch { kind, parts },
            work: None,
        }))
    }

    /// Runs one wave the scheduler drained: per representation kind, all fields go
    /// through the codec's wave API as one submission, results are inserted into the
    /// cache, and every flight fans its (canonical, deduplicated) buffer out to its
    /// waiters.
    fn execute_wave(&self, tasks: Vec<DecodeTask>) {
        let (data, codes): (Vec<DecodeTask>, Vec<DecodeTask>) = tasks
            .into_iter()
            .partition(|task| task.key.kind == GetKind::Data);
        self.run_kind_wave(data);
        self.run_kind_wave(codes);
    }

    fn run_kind_wave(&self, tasks: Vec<DecodeTask>) {
        if tasks.is_empty() {
            return;
        }
        let kind = tasks[0].key.kind;
        let fields: Vec<&FieldHandle> = tasks
            .iter()
            .map(|task| &task.loaded.fields()[task.field])
            .collect();
        let produced = match kind {
            GetKind::Data => self.codec.decompress_wave(&fields),
            GetKind::Codes => self.codec.decode_codes_wave(&fields),
        };
        match produced {
            Ok(outputs) => {
                for (task, bytes) in tasks.iter().zip(outputs) {
                    // Insert before completing, complete before finishing: a miss that
                    // no longer finds the flight is guaranteed to find the cache entry.
                    let canonical = self.lock_cache().insert(task.key.clone(), bytes);
                    task.slot.complete(Ok(canonical));
                    self.sched.finish(&task.key);
                }
            }
            Err(e) => {
                let message = format!("decode failed: {}", e);
                for task in &tasks {
                    task.slot.complete(Err(message.clone()));
                    self.sched.finish(&task.key);
                }
            }
        }
    }

    fn verify(&self, archive: &str) -> Result<String, String> {
        let loaded = self
            .store
            .get(archive)
            .ok_or_else(|| format!("no archive named '{}' is loaded", archive))?;
        let mut report = String::new();
        let mut failures = 0;
        for (i, field) in loaded.fields().iter().enumerate() {
            let result = self
                .codec
                .decode_field_codes(field)
                .map_err(|e| format!("field {}: decode failed: {}", i, e))?;
            let line = match field.compressed() {
                Some(c) => match c.matches_decoded_crc(&result.symbols) {
                    Some(true) => format!(
                        "field {}: ok ({} symbols, digest {:08x})",
                        i,
                        result.symbols.len(),
                        c.decoded_crc.expect("digest present")
                    ),
                    Some(false) => {
                        failures += 1;
                        format!(
                            "field {}: DIGEST MISMATCH (stored {:08x}, decoded {:08x})",
                            i,
                            c.decoded_crc.expect("digest present"),
                            huffdec_core::crc32_symbols(&result.symbols)
                        )
                    }
                    None => format!(
                        "field {}: ok ({} symbols, no stored digest)",
                        i,
                        result.symbols.len()
                    ),
                },
                None => format!(
                    "field {}: ok ({} symbols, payload-only)",
                    i,
                    result.symbols.len()
                ),
            };
            report.push_str(&line);
            report.push('\n');
        }
        report.push_str(&format!(
            "{}: {} fields, {} digest failures\n",
            archive,
            loaded.fields().len(),
            failures
        ));
        Ok(report)
    }

    fn list_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("archives").begin_array();
        for loaded in self.store.list().iter() {
            w.begin_object();
            w.key("name").str(&loaded.name);
            w.key("path").str(&loaded.path);
            w.key("fields").begin_array();
            for field in loaded.fields() {
                // Prefix each field object with its manifest name (snapshot archives)
                // so clients can resolve names to indices without re-reading the file.
                let info = field.info().to_json();
                match field.name() {
                    Some(name) => {
                        w.begin_object();
                        w.key("name").str(name);
                        w.splice_fields(&info);
                        w.end_object();
                    }
                    None => {
                        w.raw(&info);
                    }
                }
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Renders the legacy `STATS` JSON from one registry snapshot. The document is
    /// byte-compatible with the pre-registry format: per-decoder counts come from the
    /// histogram counts and `simulated_seconds` from the histogram sums.
    fn stats_json(&self) -> String {
        let m = self.metrics_snapshot();
        let decoder_json = |w: &mut JsonWriter,
                            key: &str,
                            hists: &[huffdec_metrics::HistogramSnapshot;
                                 huffdec_metrics::DECODER_SLOTS]| {
            w.key(key).begin_object();
            // Every tag slot (the hybrid layout is not in `DecoderKind::all()`).
            for tag in 0..huffdec_metrics::DECODER_SLOTS as u8 {
                let kind = DecoderKind::from_tag(tag).expect("tag slots are decoders");
                let h = &hists[tag as usize];
                w.key(kind.name()).begin_object();
                w.key("count").u64(h.count());
                w.key("simulated_seconds").f64_sci(h.sum);
                w.end_object();
            }
            w.end_object();
        };
        let mut w = JsonWriter::with_capacity(1024);
        w.begin_object();
        w.key("backend").str(self.codec.backend_kind().name());
        w.key("device").str(&self.codec.device_name());
        w.key("requests").u64(m.requests);
        w.key("gets").u64(m.gets);
        w.key("archives_loaded").u64(self.store.len() as u64);
        w.key("cache").begin_object();
        w.key("hits").u64(m.cache_hits);
        w.key("misses").u64(m.cache_misses);
        w.key("evictions").u64(m.cache_evictions);
        w.key("insertions").u64(m.cache_insertions);
        w.key("uncacheable").u64(m.cache_uncacheable);
        w.key("used_bytes").u64(m.cache_used_bytes);
        w.key("budget_bytes").u64(m.cache_budget_bytes);
        w.key("entries").u64(m.cache_entries);
        w.end_object();
        decoder_json(&mut w, "full_decodes", &m.decode_seconds);
        decoder_json(&mut w, "index_builds", &m.index_build_seconds);
        decoder_json(&mut w, "partial_decodes", &m.partial_decode_seconds);
        w.key("partial_blocks_decoded")
            .u64(m.partial_blocks_decoded);
        w.key("partial_blocks_total").u64(m.partial_blocks_spanned);
        w.key("batch").begin_object();
        w.key("gets").u64(m.batch_gets);
        w.key("fields").u64(m.batch_fields);
        w.key("decoded_fields").u64(m.batch_decoded_fields);
        w.key("serial_seconds").f64_sci(m.batch_serial_seconds);
        w.key("batched_seconds").f64_sci(m.batch_batched_seconds);
        w.end_object();
        w.end_object();
        w.finish()
    }
}

fn slice_response(
    bytes: &[u8],
    kind: GetKind,
    range: Option<(u64, u64)>,
    elements: u64,
    from_cache: bool,
    partial: bool,
) -> Response {
    match range {
        None => Response::Get {
            kind,
            from_cache,
            partial,
            elements,
            bytes: bytes.to_vec(),
        },
        Some((start, len)) => {
            let eb = kind.element_bytes();
            let lo = (start * eb) as usize;
            let hi = ((start + len) * eb) as usize;
            Response::Get {
                kind,
                from_cache,
                partial,
                elements: len,
                bytes: bytes[lo..hi].to_vec(),
            }
        }
    }
}

/// A decode future's result, shaped for the wire.
fn flight_response(
    result: Result<Arc<Vec<u8>>, String>,
    kind: GetKind,
    range: Option<(u64, u64)>,
    elements: u64,
) -> Response {
    match result {
        Ok(bytes) => slice_response(&bytes, kind, range, elements, false, false),
        Err(message) => Response::Error(message),
    }
}

fn batch_response(kind: GetKind, items: &[(Arc<Vec<u8>>, bool)]) -> Response {
    let items = items
        .iter()
        .map(|(bytes, from_cache)| BatchGetItem {
            from_cache: *from_cache,
            elements: bytes.len() as u64 / kind.element_bytes(),
            bytes: bytes.to_vec(),
        })
        .collect();
    Response::GetBatch { kind, items }
}

/// A request in flight: either the response is ready, or a ticket describes what to
/// wait for.
pub(crate) enum Async {
    /// Resolved inline.
    Ready(Response),
    /// Parked on a decode flight, a batch of them, or a job thread.
    Pending(Ticket),
}

/// What a pending request is waiting on, plus (for jobs) the deferred work itself.
pub(crate) struct Ticket {
    waiter: Waiter,
    work: Option<Box<dyn FnOnce() + Send>>,
}

enum Waiter {
    /// A single-field `GET` waiting on its (possibly shared) decode flight.
    Flight {
        slot: Arc<FlightSlot>,
        kind: GetKind,
        range: Option<(u64, u64)>,
        elements: u64,
    },
    /// A `GETBATCH` whose parts resolve independently (hits are already resolved).
    Batch {
        kind: GetKind,
        parts: Vec<BatchPart>,
    },
    /// Blocking work running on a job thread.
    Job(Arc<JobSlot>),
}

enum BatchPart {
    Hit(Arc<Vec<u8>>),
    Wait(Arc<FlightSlot>),
}

/// Completion slot for job-thread work (LOAD, VERIFY, partial decodes).
#[derive(Debug, Default)]
struct JobSlot {
    done: Mutex<Option<Response>>,
    cv: Condvar,
}

impl JobSlot {
    fn fill(&self, response: Response) {
        *self.done.lock().unwrap_or_else(|p| p.into_inner()) = Some(response);
        self.cv.notify_all();
    }

    fn wait(&self) -> Response {
        let mut done = self.done.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(response) = done.take() {
                return response;
            }
            done = self.cv.wait(done).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn try_take(&self) -> Option<Response> {
        self.done.lock().unwrap_or_else(|p| p.into_inner()).take()
    }
}

impl Ticket {
    /// Detaches the deferred work, if any — the reactor runs it on a job thread.
    fn take_work(&mut self) -> Option<Box<dyn FnOnce() + Send>> {
        self.work.take()
    }

    /// Runs any deferred work inline and blocks until the response is ready (the
    /// socketless [`ServerState::handle`] path).
    fn run_and_wait(mut self) -> Response {
        if let Some(work) = self.work.take() {
            work();
        }
        match self.waiter {
            Waiter::Flight {
                slot,
                kind,
                range,
                elements,
            } => flight_response(slot.wait(), kind, range, elements),
            Waiter::Batch { kind, parts } => {
                let mut items = Vec::with_capacity(parts.len());
                for part in parts {
                    match part {
                        BatchPart::Hit(bytes) => items.push((bytes, true)),
                        BatchPart::Wait(slot) => match slot.wait() {
                            Ok(bytes) => items.push((bytes, false)),
                            Err(message) => return Response::Error(message),
                        },
                    }
                }
                batch_response(kind, &items)
            }
            Waiter::Job(slot) => slot.wait(),
        }
    }

    /// Non-blocking: `Some(response)` once everything this ticket waits on is done.
    fn poll(&self) -> Option<Response> {
        match &self.waiter {
            Waiter::Flight {
                slot,
                kind,
                range,
                elements,
            } => slot
                .try_get()
                .map(|result| flight_response(result, *kind, *range, *elements)),
            Waiter::Batch { kind, parts } => {
                let mut items = Vec::with_capacity(parts.len());
                for part in parts {
                    match part {
                        BatchPart::Hit(bytes) => items.push((Arc::clone(bytes), true)),
                        BatchPart::Wait(slot) => match slot.try_get() {
                            None => return None,
                            Some(Ok(bytes)) => items.push((bytes, false)),
                            Some(Err(message)) => return Some(Response::Error(message)),
                        },
                    }
                }
                Some(batch_response(*kind, &items))
            }
            Waiter::Job(slot) => slot.try_take(),
        }
    }
}

/// Encodes a response, degrading one that does not fit a frame (a field decoding past
/// the 1 GiB response ceiling) to a typed error instead of desyncing the stream.
fn encode_capped(response: Response) -> Vec<u8> {
    let body = response.encode();
    if body.len() as u64 > MAX_RESPONSE_BYTES as u64 {
        return Response::Error(format!(
            "response of {} bytes exceeds the {} frame limit; request a range",
            body.len(),
            MAX_RESPONSE_BYTES
        ))
        .encode();
    }
    body
}

fn frame(body: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(4 + body.len());
    framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
    framed.extend_from_slice(body);
    framed
}

/// One reply slot in a connection's ordered queue: encoded and ready to write, or
/// still waiting on its ticket. Replies always leave in request order.
enum Entry {
    Ready(Vec<u8>),
    Waiting(Ticket),
}

/// Per-connection state the reactor owns: the socket, the partial read buffer, the
/// ordered reply queue, and the partial write in progress.
struct ConnState {
    conn: Conn,
    rbuf: Vec<u8>,
    queue: VecDeque<Entry>,
    wbuf: Vec<u8>,
    wpos: usize,
    close_after_write: bool,
}

impl ConnState {
    fn new(conn: Conn) -> ConnState {
        ConnState {
            conn,
            rbuf: Vec::new(),
            queue: VecDeque::new(),
            wbuf: Vec::new(),
            wpos: 0,
            close_after_write: false,
        }
    }

    /// One reactor pass over this connection: read what's available, start every
    /// complete request, resolve finished tickets, write what fits. Returns
    /// `(keep, progressed)`.
    fn pump(
        &mut self,
        state: &Arc<ServerState>,
        jobs: &mut Vec<std::thread::JoinHandle<()>>,
    ) -> (bool, bool) {
        let mut progressed = false;
        // Read whatever is available.
        let mut buf = [0u8; 16 * 1024];
        let mut eof = false;
        loop {
            match self.conn.read(&mut buf) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&buf[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    eof = true; // dead socket: treat as EOF and drain out
                    break;
                }
            }
        }
        // Start every complete frame.
        loop {
            if self.rbuf.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes(self.rbuf[..4].try_into().expect("4 bytes")) as usize;
            if len as u64 > MAX_REQUEST_BYTES as u64 {
                return (false, true); // protocol violation: drop the connection
            }
            if self.rbuf.len() < 4 + len {
                break;
            }
            let body: Vec<u8> = self.rbuf[4..4 + len].to_vec();
            self.rbuf.drain(..4 + len);
            progressed = true;
            // Once SHUTDOWN has been accepted, concurrent connections are dropped
            // rather than served: the daemon must be able to exit without waiting for
            // every keepalive client to hang up on its own.
            if state.is_shutting_down() {
                return (false, true);
            }
            let entry = match Request::decode(&body) {
                Ok(request) => match state.respond(&request) {
                    Async::Ready(response) => {
                        if matches!(response, Response::ShuttingDown) {
                            self.close_after_write = true;
                        }
                        Entry::Ready(encode_capped(response))
                    }
                    Async::Pending(mut ticket) => {
                        if let Some(work) = ticket.take_work() {
                            jobs.push(std::thread::spawn(work));
                        }
                        Entry::Waiting(ticket)
                    }
                },
                Err(e) => Entry::Ready(encode_capped(Response::Error(format!(
                    "bad request: {}",
                    e
                )))),
            };
            self.queue.push_back(entry);
        }
        // Resolve finished tickets (anywhere in the queue — a later reply may finish
        // before an earlier one; it still leaves in order).
        for entry in self.queue.iter_mut() {
            if let Entry::Waiting(ticket) = entry {
                if let Some(response) = ticket.poll() {
                    *entry = Entry::Ready(encode_capped(response));
                    progressed = true;
                }
            }
        }
        // Write as much as the socket accepts, in request order.
        loop {
            if self.wbuf.len() == self.wpos {
                match self.queue.front() {
                    Some(Entry::Ready(_)) => match self.queue.pop_front() {
                        Some(Entry::Ready(body)) => {
                            self.wbuf = frame(&body);
                            self.wpos = 0;
                        }
                        _ => unreachable!("front was Ready"),
                    },
                    _ => break,
                }
            }
            match self.conn.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return (false, true),
                Ok(n) => {
                    self.wpos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return (false, true),
            }
        }
        if self.close_after_write && self.queue.is_empty() && self.wbuf.len() == self.wpos {
            let _ = self.conn.flush();
            return (false, progressed);
        }
        if eof {
            // Peer closed its sending half. Keep the connection only while replies
            // are still owed (a pipelined client may have shut down writes early).
            let owed = !self.queue.is_empty() || self.wbuf.len() != self.wpos;
            return (owed, progressed);
        }
        (true, progressed)
    }

    /// Shutdown drain: flushes the replies that are already resolved (most
    /// importantly the `ShuttingDown` acknowledgement) with a short blocking budget,
    /// then the connection drops.
    fn flush_ready_blocking(&mut self) {
        let _ = self.conn.set_nonblocking(false);
        let _ = self.conn.set_timeouts(
            Some(Duration::from_millis(200)),
            Some(Duration::from_millis(200)),
        );
        if self.wbuf.len() != self.wpos {
            let at = self.wpos;
            if self.conn.write_all(&self.wbuf[at..]).is_err() {
                return;
            }
        }
        while let Some(entry) = self.queue.pop_front() {
            match entry {
                Entry::Ready(body) => {
                    if self.conn.write_all(&frame(&body)).is_err() {
                        return;
                    }
                }
                // A decode still pending at shutdown: its connection drops, like every
                // other connection the shutdown severs.
                Entry::Waiting(_) => break,
            }
        }
        let _ = self.conn.flush();
    }
}

/// A bound daemon: the listener, the shared state, and the already-running wave
/// worker. Requests are not accepted until [`Server::run`].
pub struct Server {
    listener: Listener,
    state: Arc<ServerState>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr`, builds the shared state, and spawns the wave-worker thread (so
    /// in-process consumers can drive [`ServerState::handle`] before — or without —
    /// calling [`Server::run`]).
    pub fn bind(addr: &ListenAddr, config: &ServerConfig) -> std::io::Result<Server> {
        let listener = Listener::bind(addr)?;
        let resolved = listener.local_addr()?;
        let codec = Codec::builder()
            .gpu_config(config.gpu.clone())
            .backend(config.backend)
            .host_threads(config.host_threads)
            .build()
            .expect("default codec configuration is valid");
        // The cache and the scheduler share the codec's registry: one set of
        // instruments covers the whole daemon.
        let cache = DecodedLru::with_metrics(config.cache_bytes, Arc::clone(codec.metrics()));
        let sched = Scheduler::new(
            config.queue_bound,
            config.wave_tick,
            Arc::clone(codec.metrics()),
        );
        let health_window = codec.metrics().snapshot();
        let state = Arc::new(ServerState {
            codec,
            store: ArchiveStore::new(),
            cache: Mutex::new(cache),
            sched,
            shutdown: AtomicBool::new(false),
            addr: resolved,
            metrics_addr: Mutex::new(None),
            health_window: Mutex::new(health_window),
        });
        let worker_state = Arc::clone(&state);
        let worker = std::thread::spawn(move || {
            while let Some(tasks) = worker_state.sched.next_wave() {
                worker_state.execute_wave(tasks);
            }
        });
        Ok(Server {
            listener,
            state,
            worker: Some(worker),
        })
    }

    /// The resolved listen address (report this to clients; for `tcp:...:0` it carries
    /// the actual port).
    pub fn local_addr(&self) -> ListenAddr {
        self.state.addr.clone()
    }

    /// Handle to the shared state (for in-process loading, stats, and tests).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Runs the event loop until a `SHUTDOWN` request arrives, then flushes pending
    /// acknowledgements, drops every connection, and drains the worker threads.
    pub fn run(mut self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut conns: Vec<ConnState> = Vec::new();
        let mut jobs: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.state.is_shutting_down() {
            let mut progressed = false;
            loop {
                match self.listener.accept() {
                    Ok(conn) => {
                        if conn.set_nonblocking(true).is_ok() {
                            conns.push(ConnState::new(conn));
                            progressed = true;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            // Reap finished job threads as we go: a long-running daemon must not
            // accumulate one JoinHandle per LOAD or VERIFY it ever served.
            jobs.retain(|job| !job.is_finished());
            let state = &self.state;
            conns.retain_mut(|conn| {
                let (keep, moved) = conn.pump(state, &mut jobs);
                progressed |= moved;
                keep
            });
            if !progressed {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
        // Shutdown: get the already-resolved replies out (the client that asked for
        // shutdown is owed its acknowledgement), then sever every connection.
        for conn in &mut conns {
            conn.flush_ready_blocking();
        }
        drop(conns);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        for job in jobs {
            let _ = job.join();
        }
        Ok(())
    }
}
