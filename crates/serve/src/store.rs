//! The in-memory archive store: parse once at `LOAD`, serve many.
//!
//! The store is a thin, named registry over the facade's archive sessions
//! ([`huffdec_codec::ArchiveHandle`]): loading an archive file opens it through the
//! facade exactly once — header, section table, and decode structures all parsed and
//! validated up front — and every field is a [`FieldHandle`] that lazily builds and
//! caches its range-decode index on first use, so a ranged `GET` launches only the
//! overlapping blocks. The store itself only adds what serving needs on top: stable
//! names, replacement generations, and thread-safe lookup.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use huffdec_codec::{ArchiveHandle, FieldHandle, HfzError};
use huffdec_container::SnapshotManifest;

/// One loaded archive file: a name, its source path, and the opened facade session.
#[derive(Debug)]
pub struct LoadedArchive {
    /// Name requests address the archive by.
    pub name: String,
    /// Filesystem path the archive was loaded from.
    pub path: String,
    /// Monotonic load generation, unique per `load` call. Cache keys carry it so a
    /// decode of a *replaced* archive that races its re-load can never be served to
    /// requests addressing the new one.
    pub generation: u64,
    /// The opened archive session: every field parsed once, decode indexes cached
    /// per field.
    handle: ArchiveHandle,
}

impl LoadedArchive {
    /// The opened archive session.
    pub fn handle(&self) -> &ArchiveHandle {
        &self.handle
    }

    /// The fields, in file order.
    pub fn fields(&self) -> &[FieldHandle] {
        self.handle.fields()
    }

    /// The snapshot manifest, when the file carries one.
    pub fn manifest(&self) -> Option<&SnapshotManifest> {
        self.handle.manifest()
    }

    /// Resolves a manifest field name to its index (manifest-backed archives only).
    pub fn field_index_by_name(&self, name: &str) -> Option<u32> {
        self.manifest()
            .and_then(|m| m.find(name))
            .map(|(i, _)| i as u32)
    }
}

/// The daemon's set of loaded archives, shared across client threads.
#[derive(Debug, Default)]
pub struct ArchiveStore {
    archives: RwLock<HashMap<String, Arc<LoadedArchive>>>,
    next_generation: std::sync::atomic::AtomicU64,
}

impl ArchiveStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ArchiveStore::default()
    }

    /// Loads (or replaces) the archive file at `path` under `name`, parsing it exactly
    /// once through the facade. Returns the loaded handle; the caller is responsible
    /// for invalidating any cache entries of a replaced archive.
    pub fn load(&self, name: &str, path: &str) -> Result<Arc<LoadedArchive>, HfzError> {
        let handle = ArchiveHandle::open(path)?;
        let loaded = Arc::new(LoadedArchive {
            name: name.to_string(),
            path: path.to_string(),
            generation: self
                .next_generation
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            handle,
        });
        self.archives
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .insert(name.to_string(), Arc::clone(&loaded));
        Ok(loaded)
    }

    /// Looks up a loaded archive by name.
    pub fn get(&self, name: &str) -> Option<Arc<LoadedArchive>> {
        self.archives
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .cloned()
    }

    /// All loaded archives, sorted by name (stable `LIST` output).
    pub fn list(&self) -> Vec<Arc<LoadedArchive>> {
        let mut all: Vec<_> = self
            .archives
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .values()
            .cloned()
            .collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// Number of loaded archives.
    pub fn len(&self) -> usize {
        self.archives
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// Whether no archive has been loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{dataset_by_name, generate};
    use gpu_sim::GpuConfig;
    use huffdec_codec::Codec;
    use huffdec_container::ArchiveWriter;
    use huffdec_core::DecoderKind;

    fn codec() -> Codec {
        Codec::builder()
            .gpu_config(GpuConfig::test_tiny())
            .host_threads(2)
            .decoder(DecoderKind::OptimizedGapArray)
            .build()
            .unwrap()
    }

    fn write_archive_file(path: &std::path::Path, seeds: &[u64]) {
        let c = codec();
        let file = std::fs::File::create(path).unwrap();
        let mut writer = ArchiveWriter::new(std::io::BufWriter::new(file));
        for &seed in seeds {
            let field = generate(&dataset_by_name("HACC").unwrap(), 20_000, seed);
            let compressed = c.compress_archive(&field).unwrap();
            writer.write_compressed(&compressed).unwrap();
        }
        writer.into_inner().unwrap();
    }

    #[test]
    fn load_parses_once_and_serves_from_memory() {
        let dir = std::env::temp_dir().join("hfzd-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("multi.hfz");
        write_archive_file(&path, &[1, 2, 3]);

        let store = ArchiveStore::new();
        let loaded = store.load("multi", path.to_str().unwrap()).unwrap();
        assert_eq!(loaded.fields().len(), 3);
        assert_eq!(store.len(), 1);

        // Metadata queries come from the cached section table.
        for field in loaded.fields() {
            assert_eq!(field.code_elements(), 20_000);
            assert_eq!(field.data_elements(), Some(20_000));
            assert!(!field.prepared_ready());
        }

        // Deleting the file does not affect an already-loaded archive: everything is
        // in memory.
        std::fs::remove_file(&path).unwrap();
        let c = codec();
        let backend = c.backend();
        assert!(backend.config().num_sms >= 1);
        let prepared = c.prepare_field(&loaded.fields()[0]).unwrap();
        assert!(prepared.timings.total_seconds() >= 0.0);
        assert!(loaded.fields()[0].prepared_ready());

        // The prepared index is built once: the same allocation comes back.
        let again = c.prepare_field(&loaded.fields()[0]).unwrap();
        assert!(std::ptr::eq(prepared, again));
    }

    #[test]
    fn snapshot_files_load_with_manifest_names() {
        let dir = std::env::temp_dir().join("hfzd-store-test-snapshot");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.hfz");
        let c = codec();
        let fields: Vec<(String, sz::Compressed)> = [("xx", 5u64), ("yy", 6), ("zz", 7)]
            .iter()
            .map(|&(name, seed)| {
                let field = generate(&dataset_by_name("HACC").unwrap(), 15_000, seed);
                (name.to_string(), c.compress_archive(&field).unwrap())
            })
            .collect();
        let refs: Vec<(&str, &sz::Compressed)> =
            fields.iter().map(|(n, c)| (n.as_str(), c)).collect();
        std::fs::write(&path, huffdec_container::snapshot_to_bytes(&refs).unwrap()).unwrap();

        let store = ArchiveStore::new();
        let loaded = store.load("snap", path.to_str().unwrap()).unwrap();
        assert_eq!(loaded.fields().len(), 3);
        assert!(loaded.manifest().is_some());
        assert_eq!(loaded.field_index_by_name("yy"), Some(1));
        assert_eq!(loaded.field_index_by_name("nope"), None);
        for (field, (name, _)) in loaded.fields().iter().zip(&fields) {
            assert_eq!(field.name(), Some(name.as_str()));
        }
    }

    #[test]
    fn reloads_get_fresh_generations() {
        let dir = std::env::temp_dir().join("hfzd-store-test-gen");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gen.hfz");
        write_archive_file(&path, &[9]);
        let store = ArchiveStore::new();
        let first = store.load("gen", path.to_str().unwrap()).unwrap();
        let second = store.load("gen", path.to_str().unwrap()).unwrap();
        assert_ne!(
            first.generation, second.generation,
            "every load is a distinct generation"
        );
        assert_eq!(store.len(), 1, "same name replaces, not duplicates");
        assert_eq!(
            store.get("gen").unwrap().generation,
            second.generation,
            "the store serves the latest load"
        );
    }

    #[test]
    fn load_errors_are_typed() {
        let store = ArchiveStore::new();
        assert!(matches!(
            store.load("nope", "/definitely/not/here.hfz"),
            Err(HfzError::Io { .. })
        ));
        let dir = std::env::temp_dir().join("hfzd-store-test-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let empty = dir.join("empty.hfz");
        std::fs::write(&empty, b"").unwrap();
        assert!(matches!(
            store.load("empty", empty.to_str().unwrap()),
            Err(HfzError::Container(
                huffdec_container::ContainerError::Invalid { .. }
            ))
        ));
        let garbage = dir.join("garbage.hfz");
        std::fs::write(&garbage, b"not an archive at all").unwrap();
        assert!(matches!(
            store.load("garbage", garbage.to_str().unwrap()),
            Err(HfzError::Container(_))
        ));
        assert!(store.is_empty(), "failed loads must not register anything");
    }
}
