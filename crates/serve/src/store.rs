//! The in-memory archive store: parse once at `LOAD`, serve many.
//!
//! Before the daemon existed, every consumer of an `HFZ1` file re-read and re-parsed it
//! per request (the CLI decompress path opens, checksums, and reassembles the whole
//! archive every time). The store fixes that for the serving path: loading an archive
//! file runs [`huffdec_container::read_archives_with_info`] exactly once, and every
//! field keeps three levels of cached state:
//!
//! 1. the parsed **section table / header** ([`ArchiveInfo`]) — metadata queries
//!    (`LIST`) never touch the file again;
//! 2. the reassembled **decode structures** ([`Archive`]: codebook, stream, gap array,
//!    outliers) — `GET`s decode straight from memory;
//! 3. the lazily built **decode index** ([`PreparedDecode`]: converged subsequence
//!    state + output-index prefix sums) — built by the first range request and reused
//!    by all later ones, so a range `GET` launches only the overlapping blocks.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use gpu_sim::Gpu;
use huffdec_container::{
    read_snapshot_with_info, Archive, ArchiveInfo, ContainerError, SnapshotManifest,
};
use huffdec_core::{prepare_decode, DecodeError, PreparedDecode};

/// One field of a loaded archive file, with all per-field cached state.
#[derive(Debug)]
pub struct LoadedField {
    /// Manifest field name, when the file is a snapshot archive (`None` for plain
    /// concatenated files, which carry no names).
    pub name: Option<String>,
    /// Parsed header and section table (cached; `LIST` and bounds checks read this).
    pub info: ArchiveInfo,
    /// The reassembled decode structures.
    pub archive: Archive,
    /// The lazily built range-decode index.
    prepared: OnceLock<Result<PreparedDecode, DecodeError>>,
}

impl LoadedField {
    /// Number of elements a `data` request addresses (f32 elements; field archives
    /// only — payload-only archives have no reconstruction).
    pub fn data_elements(&self) -> Option<u64> {
        self.info.field.map(|meta| meta.dims.len() as u64)
    }

    /// Number of elements a `codes` request addresses (decoded symbols).
    pub fn code_elements(&self) -> u64 {
        self.info.num_symbols
    }

    /// The range-decode index, built on first use and cached for the field's lifetime.
    /// The preparation cost (synchronization or gap counting + prefix sum) is paid by
    /// whichever request gets here first; everyone after decodes only their blocks.
    pub fn prepared(&self, gpu: &Gpu) -> Result<&PreparedDecode, DecodeError> {
        self.prepared
            .get_or_init(|| prepare_decode(gpu, self.archive.decoder(), self.archive.payload()))
            .as_ref()
            .map_err(|e| *e)
    }

    /// Whether the decode index has been built yet (observability for `STATS`).
    pub fn prepared_ready(&self) -> bool {
        self.prepared.get().is_some()
    }
}

/// One loaded archive file: a name, its source path, and its parsed fields.
#[derive(Debug)]
pub struct LoadedArchive {
    /// Name requests address the archive by.
    pub name: String,
    /// Filesystem path the archive was loaded from.
    pub path: String,
    /// Monotonic load generation, unique per `load` call. Cache keys carry it so a
    /// decode of a *replaced* archive that races its re-load can never be served to
    /// requests addressing the new one.
    pub generation: u64,
    /// The snapshot manifest, when the file carries one.
    pub manifest: Option<SnapshotManifest>,
    /// The fields, in file order.
    pub fields: Vec<LoadedField>,
}

impl LoadedArchive {
    /// Resolves a manifest field name to its index (manifest-backed archives only).
    pub fn field_index_by_name(&self, name: &str) -> Option<u32> {
        self.manifest
            .as_ref()
            .and_then(|m| m.find(name))
            .map(|(i, _)| i as u32)
    }
}

/// Everything that can go wrong loading an archive file.
#[derive(Debug)]
pub enum StoreError {
    /// Reading the file failed.
    Io(std::io::Error),
    /// The file is not a valid sequence of `HFZ1` archives.
    Container(ContainerError),
    /// The file holds no archives at all.
    Empty,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "cannot read archive file: {}", e),
            StoreError::Container(e) => write!(f, "invalid archive file: {}", e),
            StoreError::Empty => write!(f, "archive file holds no archives"),
        }
    }
}

impl std::error::Error for StoreError {}

/// The daemon's set of loaded archives, shared across client threads.
#[derive(Debug, Default)]
pub struct ArchiveStore {
    archives: RwLock<HashMap<String, Arc<LoadedArchive>>>,
    next_generation: std::sync::atomic::AtomicU64,
}

impl ArchiveStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ArchiveStore::default()
    }

    /// Loads (or replaces) the archive file at `path` under `name`, parsing it exactly
    /// once. Returns the loaded handle; the caller is responsible for invalidating any
    /// cache entries of a replaced archive.
    pub fn load(&self, name: &str, path: &str) -> Result<Arc<LoadedArchive>, StoreError> {
        let bytes = std::fs::read(path).map_err(StoreError::Io)?;
        let (manifest, parsed) = read_snapshot_with_info(&bytes).map_err(StoreError::Container)?;
        if parsed.is_empty() {
            return Err(StoreError::Empty);
        }
        let fields = parsed
            .into_iter()
            .enumerate()
            .map(|(i, (info, archive))| LoadedField {
                name: manifest.as_ref().map(|m| m.entries()[i].name.clone()),
                info,
                archive,
                prepared: OnceLock::new(),
            })
            .collect();
        let loaded = Arc::new(LoadedArchive {
            name: name.to_string(),
            path: path.to_string(),
            generation: self
                .next_generation
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            manifest,
            fields,
        });
        self.archives
            .write()
            .expect("store lock poisoned")
            .insert(name.to_string(), Arc::clone(&loaded));
        Ok(loaded)
    }

    /// Looks up a loaded archive by name.
    pub fn get(&self, name: &str) -> Option<Arc<LoadedArchive>> {
        self.archives
            .read()
            .expect("store lock poisoned")
            .get(name)
            .cloned()
    }

    /// All loaded archives, sorted by name (stable `LIST` output).
    pub fn list(&self) -> Vec<Arc<LoadedArchive>> {
        let mut all: Vec<_> = self
            .archives
            .read()
            .expect("store lock poisoned")
            .values()
            .cloned()
            .collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// Number of loaded archives.
    pub fn len(&self) -> usize {
        self.archives.read().expect("store lock poisoned").len()
    }

    /// Whether no archive has been loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{dataset_by_name, generate};
    use gpu_sim::GpuConfig;
    use huffdec_container::ArchiveWriter;
    use huffdec_core::DecoderKind;
    use sz::{compress, SzConfig};

    fn write_archive_file(path: &std::path::Path, seeds: &[u64]) {
        let file = std::fs::File::create(path).unwrap();
        let mut writer = ArchiveWriter::new(std::io::BufWriter::new(file));
        for &seed in seeds {
            let field = generate(&dataset_by_name("HACC").unwrap(), 20_000, seed);
            let compressed = compress(
                &field,
                &SzConfig::paper_default(DecoderKind::OptimizedGapArray),
            );
            writer.write_compressed(&compressed).unwrap();
        }
        writer.into_inner().unwrap();
    }

    #[test]
    fn load_parses_once_and_serves_from_memory() {
        let dir = std::env::temp_dir().join("hfzd-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("multi.hfz");
        write_archive_file(&path, &[1, 2, 3]);

        let store = ArchiveStore::new();
        let loaded = store.load("multi", path.to_str().unwrap()).unwrap();
        assert_eq!(loaded.fields.len(), 3);
        assert_eq!(store.len(), 1);

        // Metadata queries come from the cached section table.
        for field in &loaded.fields {
            assert_eq!(field.code_elements(), 20_000);
            assert_eq!(field.data_elements(), Some(20_000));
            assert!(!field.prepared_ready());
        }

        // Deleting the file does not affect an already-loaded archive: everything is
        // in memory.
        std::fs::remove_file(&path).unwrap();
        let gpu = Gpu::with_host_threads(GpuConfig::test_tiny(), 2);
        let prepared = loaded.fields[0].prepared(&gpu).unwrap();
        assert!(prepared.timings.total_seconds() >= 0.0);
        assert!(loaded.fields[0].prepared_ready());

        // The prepared index is built once: the same allocation comes back.
        let again = loaded.fields[0].prepared(&gpu).unwrap();
        assert!(std::ptr::eq(prepared, again));
    }

    #[test]
    fn snapshot_files_load_with_manifest_names() {
        let dir = std::env::temp_dir().join("hfzd-store-test-snapshot");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.hfz");
        let fields: Vec<(String, sz::Compressed)> = [("xx", 5u64), ("yy", 6), ("zz", 7)]
            .iter()
            .map(|&(name, seed)| {
                let field = generate(&dataset_by_name("HACC").unwrap(), 15_000, seed);
                (
                    name.to_string(),
                    compress(
                        &field,
                        &SzConfig::paper_default(DecoderKind::OptimizedGapArray),
                    ),
                )
            })
            .collect();
        let refs: Vec<(&str, &sz::Compressed)> =
            fields.iter().map(|(n, c)| (n.as_str(), c)).collect();
        std::fs::write(&path, huffdec_container::snapshot_to_bytes(&refs).unwrap()).unwrap();

        let store = ArchiveStore::new();
        let loaded = store.load("snap", path.to_str().unwrap()).unwrap();
        assert_eq!(loaded.fields.len(), 3);
        assert!(loaded.manifest.is_some());
        assert_eq!(loaded.field_index_by_name("yy"), Some(1));
        assert_eq!(loaded.field_index_by_name("nope"), None);
        for (field, (name, _)) in loaded.fields.iter().zip(&fields) {
            assert_eq!(field.name.as_deref(), Some(name.as_str()));
        }
    }

    #[test]
    fn reloads_get_fresh_generations() {
        let dir = std::env::temp_dir().join("hfzd-store-test-gen");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gen.hfz");
        write_archive_file(&path, &[9]);
        let store = ArchiveStore::new();
        let first = store.load("gen", path.to_str().unwrap()).unwrap();
        let second = store.load("gen", path.to_str().unwrap()).unwrap();
        assert_ne!(
            first.generation, second.generation,
            "every load is a distinct generation"
        );
        assert_eq!(store.len(), 1, "same name replaces, not duplicates");
        assert_eq!(
            store.get("gen").unwrap().generation,
            second.generation,
            "the store serves the latest load"
        );
    }

    #[test]
    fn load_errors_are_typed() {
        let store = ArchiveStore::new();
        assert!(matches!(
            store.load("nope", "/definitely/not/here.hfz"),
            Err(StoreError::Io(_))
        ));
        let dir = std::env::temp_dir().join("hfzd-store-test-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let empty = dir.join("empty.hfz");
        std::fs::write(&empty, b"").unwrap();
        assert!(matches!(
            store.load("empty", empty.to_str().unwrap()),
            Err(StoreError::Empty)
        ));
        let garbage = dir.join("garbage.hfz");
        std::fs::write(&garbage, b"not an archive at all").unwrap();
        assert!(matches!(
            store.load("garbage", garbage.to_str().unwrap()),
            Err(StoreError::Container(_))
        ));
        assert!(store.is_empty(), "failed loads must not register anything");
    }
}
