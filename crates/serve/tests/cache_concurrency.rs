//! Multi-threaded hammer test for the decoded-field LRU: counters must stay
//! consistent and the byte budget must hold under every interleaving.
//!
//! The cache is the daemon's only mutable hot-path state, so this is the concurrency
//! property the whole serving layer leans on: `hits + misses` equals the number of
//! `get`s issued, every miss is followed by exactly one accounted insertion (or an
//! uncacheable refusal), and `used_bytes` never exceeds the budget — checked under the
//! lock after *every* operation, not just at the end.

use std::sync::{Arc, Mutex};

use huffdec_serve::cache::{CacheKey, DecodedLru};
use huffdec_serve::protocol::GetKind;

fn key(archive: u64, field: u64, kind: GetKind) -> CacheKey {
    CacheKey {
        archive: format!("arch-{}", archive),
        generation: 1,
        field: field as u32,
        kind,
    }
}

/// A tiny deterministic PRNG (xorshift) so the schedule differs per thread without
/// pulling in a dependency.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[test]
fn hammer_counters_are_consistent_and_budget_holds() {
    const THREADS: u64 = 8;
    const OPS_PER_THREAD: u64 = 2_000;
    const BUDGET: u64 = 10_000;

    let cache = Arc::new(Mutex::new(DecodedLru::new(BUDGET)));
    let mut workers = Vec::new();
    for t in 0..THREADS {
        let cache = Arc::clone(&cache);
        workers.push(std::thread::spawn(move || {
            let mut rng = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t + 1);
            let (mut local_gets, mut local_hits) = (0u64, 0u64);
            for _ in 0..OPS_PER_THREAD {
                let r = xorshift(&mut rng);
                let k = key(
                    r % 3,
                    (r >> 8) % 12,
                    if r & 1 == 0 {
                        GetKind::Data
                    } else {
                        GetKind::Codes
                    },
                );
                // Mostly gets with miss-filling inserts; sizes vary so eviction
                // pressure is constant and some entries are uncacheable.
                let mut guard = cache.lock().unwrap();
                local_gets += 1;
                let hit = guard.get(&k).is_some();
                if hit {
                    local_hits += 1;
                } else {
                    let size = match (r >> 16) % 10 {
                        9 => BUDGET as usize + 1, // uncacheable
                        n => 500 + (n as usize) * 300,
                    };
                    let returned = guard.insert(k, vec![0u8; size]);
                    assert_eq!(returned.len(), size);
                }
                guard
                    .check_invariants()
                    .expect("invariants must hold after every operation");
                assert!(guard.used_bytes() <= BUDGET);
                drop(guard);
            }
            (local_gets, local_hits)
        }));
    }

    let mut total_gets = 0u64;
    let mut total_hits = 0u64;
    for worker in workers {
        let (gets, hits) = worker.join().unwrap();
        total_gets += gets;
        total_hits += hits;
    }

    let guard = cache.lock().unwrap();
    let stats = guard.stats();
    assert_eq!(total_gets, THREADS * OPS_PER_THREAD);
    assert_eq!(
        stats.hits + stats.misses,
        total_gets,
        "every get is exactly one hit or one miss: {:?}",
        stats
    );
    assert_eq!(stats.hits, total_hits, "hit counters agree: {:?}", stats);
    assert_eq!(
        stats.insertions + stats.uncacheable,
        stats.misses,
        "every miss was followed by exactly one insert or refusal: {:?}",
        stats
    );
    assert!(stats.evictions > 0, "the budget must have forced evictions");
    assert!(
        stats.uncacheable > 0,
        "oversized entries must have occurred"
    );
    guard.check_invariants().unwrap();
    assert!(guard.used_bytes() <= BUDGET);
}

#[test]
fn hammer_shared_entries_survive_while_referenced() {
    // Readers hold Arc'd bytes across evictions: the data stays valid even after the
    // entry is pushed out, exactly like a response being streamed during an eviction.
    let cache = Arc::new(Mutex::new(DecodedLru::new(1_000)));
    let k0 = key(0, 0, GetKind::Data);
    let held = cache.lock().unwrap().insert(k0.clone(), vec![7u8; 900]);
    // Force k0 out.
    cache
        .lock()
        .unwrap()
        .insert(key(0, 1, GetKind::Data), vec![1u8; 900]);
    assert!(cache.lock().unwrap().peek(&k0).is_none(), "evicted");
    assert!(held.iter().all(|&b| b == 7), "held bytes outlive eviction");
    assert_eq!(cache.lock().unwrap().stats().evictions, 1);
}
