//! Scheduler behaviour under contention: single-flight coalescing (N clients, one
//! cold field, exactly one decode), cross-request batch waves (distinct cold fields
//! merging into one multi-field wave), and `BUSY` shedding at a tiny queue bound.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use datasets::{dataset_by_name, generate};
use gpu_sim::{Gpu, GpuConfig};
use huffdec_container::ArchiveWriter;
use huffdec_core::DecoderKind;
use huffdec_serve::client::Connection;
use huffdec_serve::net::ListenAddr;
use huffdec_serve::protocol::{GetKind, Request, Response};
use huffdec_serve::server::{Server, ServerConfig};
use huffdec_serve::BackendKind;
use sz::{compress, decompress, Compressed, SzConfig};

const ELEMENTS: usize = 20_000;

fn f32_bytes(values: &[f32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// One single-field archive on disk plus its reference decode.
fn single_field_archive(dir: &std::path::Path, seed: u64) -> (std::path::PathBuf, Vec<f32>) {
    let gpu = Gpu::with_host_threads(GpuConfig::test_tiny(), 2);
    let field = generate(&dataset_by_name("HACC").unwrap(), ELEMENTS, seed);
    let compressed = compress(
        &field,
        &SzConfig::paper_default(DecoderKind::OptimizedGapArray),
    );
    let reference = decompress(&gpu, &compressed).unwrap().data;
    let path = dir.join(format!("field-{}.hfz", seed));
    let file = std::fs::File::create(&path).unwrap();
    let mut writer = ArchiveWriter::new(std::io::BufWriter::new(file));
    writer.write_compressed(&compressed).unwrap();
    writer.into_inner().unwrap();
    (path, reference)
}

fn config(queue_bound: usize, wave_tick: Duration) -> ServerConfig {
    ServerConfig {
        cache_bytes: 16 << 20,
        gpu: GpuConfig::test_tiny(),
        backend: BackendKind::from_env(),
        host_threads: 2,
        queue_bound,
        wave_tick,
    }
}

/// The acceptance scenario: eight concurrent clients hammer one cold field over the
/// wire. Exactly one decode runs; every other request either joined the in-flight
/// decode (coalesced) or arrived after it landed in the cache (hit); all eight
/// replies are byte-identical to the direct decompress.
#[test]
fn concurrent_cold_misses_coalesce_into_one_decode() {
    let dir = std::env::temp_dir().join("hfzd-coalesce-single");
    std::fs::create_dir_all(&dir).unwrap();
    let (path, reference) = single_field_archive(&dir, 41);

    // A generous tick keeps the decode wave open long enough that most clients find
    // the flight still pending — but the decode-count assertion below holds for any
    // timing: late arrivals hit the cache instead of decoding again.
    let config = config(256, Duration::from_millis(150));
    let server = Server::bind(&ListenAddr::parse("tcp:127.0.0.1:0").unwrap(), &config).unwrap();
    let addr = server.local_addr();
    let state = server.state();
    let server_thread = std::thread::spawn(move || server.run().unwrap());
    state.load_archive("f", path.to_str().unwrap()).unwrap();

    const CLIENTS: usize = 8;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Connection::connect(&addr).unwrap();
                barrier.wait();
                client.get("f", 0, GetKind::Data, None).unwrap()
            })
        })
        .collect();
    let results: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    let expected = f32_bytes(&reference);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(
            r.bytes, expected,
            "client {} diverged from direct decode",
            i
        );
        assert_eq!(r.elements as usize, reference.len());
    }

    // Exactly one decode ran for the eight misses.
    let stats = state.metrics_snapshot();
    let decodes: u64 = stats.decode_seconds.iter().map(|h| h.count()).sum();
    assert_eq!(decodes, 1, "coalescing must leave exactly one decode");
    // Every other request is accounted for: it either joined the flight or hit the
    // cache after the flight's result was inserted.
    let cache = state.cache_stats();
    assert_eq!(
        stats.sched_coalesced + cache.hits,
        (CLIENTS - 1) as u64,
        "coalesced {} + hits {} must cover the other {} requests",
        stats.sched_coalesced,
        cache.hits,
        CLIENTS - 1
    );
    assert!(stats.sched_waves >= 1);
    assert_eq!(stats.sched_shed, 0, "nothing sheds under a roomy bound");

    Connection::connect(&addr).unwrap().shutdown().unwrap();
    server_thread.join().unwrap();
}

/// Distinct cold fields requested within one scheduling tick merge into a single
/// multi-field decode wave.
#[test]
fn distinct_cold_fields_merge_into_one_wave() {
    let dir = std::env::temp_dir().join("hfzd-coalesce-wave");
    std::fs::create_dir_all(&dir).unwrap();
    let gpu = Gpu::with_host_threads(GpuConfig::test_tiny(), 2);

    // A three-field snapshot so one archive carries the distinct fields.
    let specs = [
        ("a", DecoderKind::OptimizedGapArray, 61u64),
        ("b", DecoderKind::OptimizedSelfSync, 62),
        ("c", DecoderKind::OptimizedGapArray, 63),
    ];
    let fields: Vec<(&str, Compressed, Vec<f32>)> = specs
        .iter()
        .map(|&(name, decoder, seed)| {
            let field = generate(&dataset_by_name("HACC").unwrap(), ELEMENTS, seed);
            let compressed = compress(&field, &SzConfig::paper_default(decoder));
            let data = decompress(&gpu, &compressed).unwrap().data;
            (name, compressed, data)
        })
        .collect();
    let refs: Vec<(&str, &Compressed)> = fields.iter().map(|(n, c, _)| (*n, c)).collect();
    let path = dir.join("snap.hfz");
    std::fs::write(&path, huffdec_container::snapshot_to_bytes(&refs).unwrap()).unwrap();

    // A long tick guarantees the wave is still open when the other threads' misses
    // arrive: the worker sleeps 400 ms after the first submit before draining.
    let config = config(256, Duration::from_millis(400));
    let server = Server::bind(&ListenAddr::parse("tcp:127.0.0.1:0").unwrap(), &config).unwrap();
    let state = server.state();
    state.load_archive("snap", path.to_str().unwrap()).unwrap();

    let barrier = Arc::new(Barrier::new(fields.len()));
    let workers: Vec<_> = (0..fields.len())
        .map(|i| {
            let state = Arc::clone(&state);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                state.handle(&Request::Get {
                    archive: "snap".to_string(),
                    field: i as u32,
                    kind: GetKind::Data,
                    range: None,
                })
            })
        })
        .collect();
    let results: Vec<Response> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    for (response, (_, _, reference)) in results.iter().zip(&fields) {
        match response {
            Response::Get { bytes, .. } => assert_eq!(bytes, &f32_bytes(reference)),
            other => panic!("expected a GET reply, got {:?}", other),
        }
    }

    let stats = state.metrics_snapshot();
    assert!(
        stats.sched_multi_field_waves >= 1,
        "three simultaneous cold misses within a 400 ms tick must batch: waves {}, fields {}",
        stats.sched_waves,
        stats.sched_wave_fields
    );
    assert_eq!(stats.sched_wave_fields, fields.len() as u64);

    state.request_shutdown();
    server.run().unwrap();
}

/// At `queue_bound: 1` a second distinct miss inside the wave window answers the
/// typed `BUSY` instead of queueing — and the first request still completes.
#[test]
fn saturated_queue_sheds_with_busy() {
    let dir = std::env::temp_dir().join("hfzd-coalesce-busy");
    std::fs::create_dir_all(&dir).unwrap();
    let (path_a, reference_a) = single_field_archive(&dir, 71);
    let (path_b, _) = single_field_archive(&dir, 72);

    // The 600 ms tick holds the submitted task in the pending queue; the bound of 1
    // makes the second, distinct miss overflow deterministically.
    let config = config(1, Duration::from_millis(600));
    let server = Server::bind(&ListenAddr::parse("tcp:127.0.0.1:0").unwrap(), &config).unwrap();
    let state = server.state();
    state.load_archive("a", path_a.to_str().unwrap()).unwrap();
    state.load_archive("b", path_b.to_str().unwrap()).unwrap();

    let first = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            state.handle(&Request::Get {
                archive: "a".to_string(),
                field: 0,
                kind: GetKind::Data,
                range: None,
            })
        })
    };
    // Give the first miss time to enter the queue, then overflow it with a second
    // distinct field. Same-field requests would coalesce; only new work sheds.
    std::thread::sleep(Duration::from_millis(100));
    let second = state.handle(&Request::Get {
        archive: "b".to_string(),
        field: 0,
        kind: GetKind::Data,
        range: None,
    });
    assert!(
        matches!(second, Response::Busy),
        "a full pending queue must answer BUSY, got {:?}",
        second
    );

    match first.join().unwrap() {
        Response::Get { bytes, .. } => assert_eq!(bytes, f32_bytes(&reference_a)),
        other => panic!("the admitted request must still decode, got {:?}", other),
    }
    let stats = state.metrics_snapshot();
    assert!(stats.sched_shed >= 1, "shedding must be counted");

    state.request_shutdown();
    server.run().unwrap();
}
