//! End-to-end daemon test: the acceptance scenario of the serving layer.
//!
//! Loads two archives, hammers the daemon with concurrent `GET`s from four client
//! threads, and asserts: every response is byte-identical to a direct `sz` decode, the
//! cache reports hits, misses, and (under a deliberately small byte budget) at least
//! one eviction, the byte budget is never exceeded, and the daemon shuts down cleanly.

use std::sync::Arc;

use datasets::{dataset_by_name, generate, Field};
use gpu_sim::{Gpu, GpuConfig};
use huffdec_container::ArchiveWriter;
use huffdec_core::DecoderKind;
use huffdec_serve::client::Connection;
use huffdec_serve::net::ListenAddr;
use huffdec_serve::protocol::GetKind;
use huffdec_serve::server::{Server, ServerConfig};
use huffdec_serve::BackendKind;
use sz::{compress, decode_codes, decompress, Compressed, SzConfig};

const ELEMENTS: usize = 20_000;

struct TestArchive {
    name: &'static str,
    path: std::path::PathBuf,
    compressed: Compressed,
    reference_data: Vec<f32>,
    reference_codes: Vec<u16>,
    /// Actual element count (generators may round the request to fit their dims).
    elements: u64,
}

fn build_archive(
    dir: &std::path::Path,
    gpu: &Gpu,
    name: &'static str,
    dataset: &str,
    decoder: DecoderKind,
    seed: u64,
) -> TestArchive {
    let field: Field = generate(&dataset_by_name(dataset).unwrap(), ELEMENTS, seed);
    let compressed = compress(&field, &SzConfig::paper_default(decoder));
    let path = dir.join(format!("{}.hfz", name));
    let file = std::fs::File::create(&path).unwrap();
    let mut writer = ArchiveWriter::new(std::io::BufWriter::new(file));
    writer.write_compressed(&compressed).unwrap();
    writer.into_inner().unwrap();
    let reference_data = decompress(gpu, &compressed).unwrap().data;
    let reference_codes = decode_codes(gpu, &compressed).unwrap().symbols;
    let elements = reference_data.len() as u64;
    TestArchive {
        name,
        path,
        compressed,
        reference_data,
        reference_codes,
        elements,
    }
}

fn f32_bytes(values: &[f32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

#[test]
fn daemon_serves_concurrent_clients_with_eviction() {
    let dir = std::env::temp_dir().join("hfzd-daemon-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let gpu = Gpu::with_host_threads(GpuConfig::test_tiny(), 2);

    // Two archives with different decoders; one decoded field is 80 KB of f32s, so a
    // 100 KB budget can never hold both — the hammer must evict.
    let archives = Arc::new(vec![
        build_archive(
            &dir,
            &gpu,
            "hacc",
            "HACC",
            DecoderKind::OptimizedGapArray,
            1,
        ),
        build_archive(
            &dir,
            &gpu,
            "gamess",
            "GAMESS",
            DecoderKind::OptimizedSelfSync,
            2,
        ),
    ]);
    // 1.25 decoded fields: both can never be resident at once, so the hammer evicts.
    let field_bytes = archives.iter().map(|a| a.elements * 4).max().unwrap();
    let budget = field_bytes + field_bytes / 4;

    let config = ServerConfig {
        cache_bytes: budget,
        gpu: GpuConfig::test_tiny(),
        backend: BackendKind::from_env(),
        host_threads: 2,
        ..ServerConfig::default()
    };
    let addr = ListenAddr::parse("tcp:127.0.0.1:0").unwrap();
    let server = Server::bind(&addr, &config).unwrap();
    let addr = server.local_addr();
    let state = server.state();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    // Load both archives over the protocol (the runtime LOAD path).
    {
        let mut client = Connection::connect(&addr).unwrap();
        for archive in archives.iter() {
            let fields = client
                .load(archive.name, archive.path.to_str().unwrap())
                .unwrap();
            assert_eq!(fields, 1);
        }
        let list = client.list().unwrap();
        assert!(list.contains("\"hacc\"") && list.contains("\"gamess\""));
    }

    // Four client threads, each alternating archives and request shapes.
    let mut workers = Vec::new();
    for t in 0..4u64 {
        let addr = addr.clone();
        let archives = Arc::clone(&archives);
        workers.push(std::thread::spawn(move || {
            let mut client = Connection::connect(&addr).unwrap();
            for i in 0..12u64 {
                let archive = &archives[((t + i) % 2) as usize];
                match i % 3 {
                    // Full data fetch: byte-identical to the direct decode.
                    0 | 1 => {
                        let r = client.get(archive.name, 0, GetKind::Data, None).unwrap();
                        assert_eq!(r.elements, archive.elements);
                        assert_eq!(r.bytes, f32_bytes(&archive.reference_data));
                    }
                    // Ranged data fetch: a slice of the same bytes.
                    _ => {
                        let start = (t * 997 + i * 131) % (archive.elements - 256);
                        let r = client
                            .get(archive.name, 0, GetKind::Data, Some((start, 256)))
                            .unwrap();
                        assert_eq!(r.elements, 256);
                        let lo = start as usize;
                        assert_eq!(r.bytes, f32_bytes(&archive.reference_data[lo..lo + 256]));
                    }
                }
            }
            // Ranged code fetches exercise the partial-decode path.
            for i in 0..4u64 {
                let archive = &archives[(i % 2) as usize];
                let start = (t * 3301 + i * 577) % (archive.elements - 512);
                let r = client
                    .get(archive.name, 0, GetKind::Codes, Some((start, 512)))
                    .unwrap();
                let lo = start as usize;
                let expected: Vec<u8> = archive.reference_codes[lo..lo + 512]
                    .iter()
                    .flat_map(|s| s.to_le_bytes())
                    .collect();
                assert_eq!(r.bytes, expected);
            }
        }));
    }
    for worker in workers {
        worker.join().unwrap();
    }

    // The cache behaved: hits and misses both happened, at least one eviction under
    // the deliberately small budget, and the budget held at all times (the cache's
    // invariant check runs inside insert; here we check the final accounting too).
    let cache = state.cache_stats();
    assert!(cache.hits > 0, "no cache hits: {:?}", cache);
    assert!(cache.misses > 0, "no cache misses: {:?}", cache);
    assert!(cache.evictions >= 1, "no evictions: {:?}", cache);
    assert!(state.cache_used_bytes() <= budget);

    let stats = state.metrics_snapshot();
    assert!(stats.gets >= 4 * 16);
    let partials: u64 = stats.partial_decode_seconds.iter().map(|h| h.count()).sum();
    assert!(partials > 0, "partial decodes must have run");
    assert!(stats.partial_blocks_decoded < stats.partial_blocks_spanned);

    // The STATS document agrees with the in-process snapshot on evictions.
    {
        let mut client = Connection::connect(&addr).unwrap();
        let json = client.stats().unwrap();
        assert!(
            json.contains(&format!("\"evictions\":{}", cache.evictions)),
            "stats JSON must report the evictions: {}",
            json
        );
        // VERIFY over the wire: both archives pass their digests.
        for archive in archives.iter() {
            let report = client.verify(archive.name).unwrap();
            assert!(report.contains("0 digest failures"), "{}", report);
        }
        assert_eq!(
            archives[0]
                .compressed
                .matches_decoded_crc(&archives[0].reference_codes),
            Some(true)
        );
        client.shutdown().unwrap();
    }
    server_thread.join().unwrap();

    // After shutdown the address no longer accepts (give the OS a beat to close).
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(
        Connection::connect(&addr).is_err(),
        "daemon must stop accepting"
    );
}

#[test]
fn daemon_rejects_bad_requests_cleanly() {
    let config = ServerConfig {
        cache_bytes: 1 << 20,
        gpu: GpuConfig::test_tiny(),
        backend: BackendKind::from_env(),
        host_threads: 2,
        ..ServerConfig::default()
    };
    let addr = ListenAddr::parse("tcp:127.0.0.1:0").unwrap();
    let server = Server::bind(&addr, &config).unwrap();
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let dir = std::env::temp_dir().join("hfzd-daemon-errors");
    std::fs::create_dir_all(&dir).unwrap();
    let gpu = Gpu::with_host_threads(GpuConfig::test_tiny(), 2);
    let archive = build_archive(&dir, &gpu, "solo", "CESM", DecoderKind::CuszBaseline, 3);

    let mut client = Connection::connect(&addr).unwrap();
    client
        .load(archive.name, archive.path.to_str().unwrap())
        .unwrap();

    // Unknown archive, bad field index, out-of-range request, unloadable path: all are
    // remote errors, and the connection stays usable after each.
    assert!(client.get("nope", 0, GetKind::Data, None).is_err());
    assert!(client.get("solo", 5, GetKind::Data, None).is_err());
    assert!(client
        .get("solo", 0, GetKind::Data, Some((archive.elements, 1)))
        .is_err());
    assert!(client
        .get("solo", 0, GetKind::Codes, Some((u64::MAX, 2)))
        .is_err());
    assert!(client.load("bad", "/no/such/file.hfz").is_err());
    assert!(client.verify("nope").is_err());

    // The baseline (chunked) decoder serves ranges through per-chunk metadata.
    let r = client
        .get("solo", 0, GetKind::Codes, Some((4_000, 100)))
        .unwrap();
    assert!(r.partial);
    assert_eq!(
        r.as_u16(),
        &archive.reference_codes[4_000..4_100],
        "chunked partial decode must match the reference"
    );

    // And the connection still serves a clean full fetch before shutdown.
    let r = client.get("solo", 0, GetKind::Data, None).unwrap();
    assert_eq!(r.bytes, f32_bytes(&archive.reference_data));

    client.shutdown().unwrap();
    server_thread.join().unwrap();
}

/// A bounded random walk whose increments stay inside the quantization alphabet under
/// an absolute bound of 0.5 (step 1.0), with `zero_pct`% of steps flat — so the
/// center-bin fraction of the quantized codes is directly controlled.
fn walk_field(n: usize, zero_pct: u64, seed: u64) -> Field {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut value = 0.0f32;
    let data: Vec<f32> = (0..n)
        .map(|_| {
            if rng() % 100 >= zero_pct {
                value += (rng() % 401) as f32 - 200.0;
            }
            value
        })
        .collect();
    Field::new("walk".to_string(), datasets::Dims::D1(n), data)
}

#[test]
fn daemon_serves_hybrid_v2_snapshot() {
    let dir = std::env::temp_dir().join("hfzd-daemon-hybrid");
    std::fs::create_dir_all(&dir).unwrap();
    let gpu = Gpu::with_host_threads(GpuConfig::test_tiny(), 2);

    // One sparse hybrid field plus two dense fields with identical codebooks (same
    // dataset, same seed), so the v2 snapshot carries a deduplicated dictionary.
    let config = |decoder| SzConfig {
        error_bound: sz::ErrorBound::Absolute(0.5),
        alphabet_size: 1024,
        decoder,
    };
    let sparse = walk_field(ELEMENTS, 95, 41);
    let dense = walk_field(ELEMENTS, 10, 42);
    let fields: Vec<(&str, Compressed)> = vec![
        ("sparse", compress(&sparse, &config(DecoderKind::RleHybrid))),
        (
            "dense",
            compress(&dense, &config(DecoderKind::OptimizedGapArray)),
        ),
        (
            "dense2",
            compress(&dense, &config(DecoderKind::OptimizedGapArray)),
        ),
    ];
    let refs: Vec<(&str, &Compressed)> = fields.iter().map(|(n, c)| (*n, c)).collect();
    let bytes = huffdec_container::snapshot_to_bytes(&refs).unwrap();
    // A hybrid field upgrades the whole snapshot to format v2: every shard header
    // carries the v2 magic and none stay on v1.
    assert!(bytes.windows(4).any(|w| w == b"HFZ2"));
    assert!(bytes.windows(4).all(|w| w != b"HFZ1"));
    let path = dir.join("hybrid.hfz");
    std::fs::write(&path, &bytes).unwrap();

    let expected: Vec<(Vec<f32>, Vec<u16>)> = fields
        .iter()
        .map(|(_, c)| {
            (
                decompress(&gpu, c).unwrap().data,
                decode_codes(&gpu, c).unwrap().symbols,
            )
        })
        .collect();

    let config = ServerConfig {
        cache_bytes: 4 << 20,
        gpu: GpuConfig::test_tiny(),
        backend: BackendKind::from_env(),
        host_threads: 2,
        ..ServerConfig::default()
    };
    let addr = ListenAddr::parse("tcp:127.0.0.1:0").unwrap();
    let server = Server::bind(&addr, &config).unwrap();
    let addr = server.local_addr();
    let state = server.state();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let mut client = Connection::connect(&addr).unwrap();
    assert_eq!(client.load("hy", path.to_str().unwrap()).unwrap(), 3);

    // LIST reports the container format version and the per-field dictionary slot:
    // the dense twins share a dictionary entry, the hybrid field has none.
    let list = client.list().unwrap();
    assert!(
        list.contains("\"format_version\":2"),
        "LIST must expose the v2 format version: {}",
        list
    );
    assert!(
        list.contains("\"dict_id\":0"),
        "dense fields must reference the dictionary: {}",
        list
    );
    assert!(
        list.contains("\"dict_id\":null"),
        "the hybrid field keeps its codebooks inline: {}",
        list
    );
    assert!(list.contains("\"decoder\":\"rle+huff hybrid\""), "{}", list);

    // Cold GETBATCH: the mixed hybrid+dense wave decodes everything in request order.
    let items = client.get_batch("hy", GetKind::Data, &[2, 0, 1]).unwrap();
    assert_eq!(items.len(), 3);
    for (item, index) in items.iter().zip([2usize, 0, 1]) {
        assert!(!item.from_cache, "cold batch must decode field {}", index);
        assert_eq!(item.bytes, f32_bytes(&expected[index].0));
    }
    // While the codes cache is still cold: a ranged codes request on the hybrid
    // field takes the partial-decode path, which hybrid streams reject with a typed
    // remote error (no block index) — and the connection stays usable. The dense
    // neighbour partial-decodes the same range fine.
    assert!(client
        .get("hy", 0, GetKind::Codes, Some((100, 64)))
        .is_err());
    let r = client
        .get("hy", 1, GetKind::Codes, Some((100, 64)))
        .unwrap();
    assert!(r.partial);
    assert_eq!(r.as_u16(), &expected[1].1[100..164]);

    let items = client.get_batch("hy", GetKind::Codes, &[0, 1]).unwrap();
    for (item, index) in items.iter().zip([0usize, 1]) {
        let codes: Vec<u8> = expected[index]
            .1
            .iter()
            .flat_map(|s| s.to_le_bytes())
            .collect();
        assert_eq!(item.bytes, codes, "batched codes for field {}", index);
    }

    // Full GETs: every field — hybrid included — is byte-identical to direct decodes.
    for (index, (data, codes)) in expected.iter().enumerate() {
        let r = client.get("hy", index as u32, GetKind::Data, None).unwrap();
        assert_eq!(r.bytes, f32_bytes(data), "field {} data diverged", index);
        let r = client
            .get("hy", index as u32, GetKind::Codes, None)
            .unwrap();
        assert_eq!(r.as_u16(), &codes[..], "field {} codes diverged", index);
    }

    // A repeat GET of the hybrid field is a decoded-LRU hit, not a second decode.
    let before = state.cache_stats();
    let r = client.get("hy", 0, GetKind::Data, None).unwrap();
    assert_eq!(r.bytes, f32_bytes(&expected[0].0));
    let after = state.cache_stats();
    assert_eq!(after.hits, before.hits + 1, "hybrid decode must be cached");

    // With the full decode resident, a ranged data request on the hybrid field is
    // served by slicing the cached bytes — no range decode needed.
    let r = client.get("hy", 0, GetKind::Data, Some((100, 64))).unwrap();
    assert!(r.from_cache);
    assert_eq!(r.bytes, f32_bytes(&expected[0].0[100..164]));

    // The hybrid decodes landed in the metrics under their own decoder slot.
    let stats = state.metrics_snapshot();
    let hybrid_decodes = stats.decode_seconds[DecoderKind::RleHybrid.tag() as usize].count();
    assert!(hybrid_decodes >= 2, "hybrid decodes must be observed");
    let json = client.stats().unwrap();
    assert!(
        json.contains("\"rle+huff hybrid\""),
        "STATS must report the hybrid decoder slot: {}",
        json
    );

    // Deep verification passes over the wire for the hybrid archive too.
    let report = client.verify("hy").unwrap();
    assert!(report.contains("0 digest failures"), "{}", report);

    client.shutdown().unwrap();
    server_thread.join().unwrap();
}

#[test]
fn batch_get_serves_snapshots_and_decodes_misses_as_one_wave() {
    let dir = std::env::temp_dir().join("hfzd-daemon-batch");
    std::fs::create_dir_all(&dir).unwrap();
    let gpu = Gpu::with_host_threads(GpuConfig::test_tiny(), 2);

    // A 3-field snapshot archive (manifest + shards) with mixed decoders.
    let specs = [
        ("xx", "HACC", DecoderKind::OptimizedGapArray, 11u64),
        ("vv", "GAMESS", DecoderKind::OptimizedSelfSync, 12),
        ("qq", "CESM", DecoderKind::CuszBaseline, 13),
    ];
    let fields: Vec<(&str, Compressed, Vec<f32>, Vec<u16>)> = specs
        .iter()
        .map(|&(name, dataset, decoder, seed)| {
            let field = generate(&dataset_by_name(dataset).unwrap(), ELEMENTS, seed);
            let compressed = compress(&field, &SzConfig::paper_default(decoder));
            let data = decompress(&gpu, &compressed).unwrap().data;
            let codes = decode_codes(&gpu, &compressed).unwrap().symbols;
            (name, compressed, data, codes)
        })
        .collect();
    let refs: Vec<(&str, &Compressed)> = fields.iter().map(|(n, c, _, _)| (*n, c)).collect();
    let path = dir.join("snap.hfz");
    std::fs::write(&path, huffdec_container::snapshot_to_bytes(&refs).unwrap()).unwrap();

    let config = ServerConfig {
        cache_bytes: 4 << 20,
        gpu: GpuConfig::test_tiny(),
        backend: BackendKind::from_env(),
        host_threads: 2,
        ..ServerConfig::default()
    };
    let addr = ListenAddr::parse("tcp:127.0.0.1:0").unwrap();
    let server = Server::bind(&addr, &config).unwrap();
    let addr = server.local_addr();
    let state = server.state();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let mut client = Connection::connect(&addr).unwrap();
    assert_eq!(client.load("snap", path.to_str().unwrap()).unwrap(), 3);

    // LIST exposes the manifest names.
    let list = client.list().unwrap();
    for (name, ..) in &fields {
        assert!(
            list.contains(&format!("\"name\":\"{}\"", name)),
            "LIST must carry manifest field names: {}",
            list
        );
    }

    // Cold batch: every field decoded in one wave, byte-identical to direct decodes.
    let items = client.get_batch("snap", GetKind::Data, &[0, 1, 2]).unwrap();
    assert_eq!(items.len(), 3);
    for ((_, _, data, _), item) in fields.iter().zip(&items) {
        assert!(!item.from_cache, "cold batch must decode, not hit");
        assert_eq!(item.bytes, f32_bytes(data), "batched field diverged");
        assert_eq!(item.elements as usize, data.len());
    }

    // Warm batch (reordered, with a duplicate): everything is a cache hit now, served
    // in request order.
    let items = client.get_batch("snap", GetKind::Data, &[2, 0, 2]).unwrap();
    assert_eq!(items.len(), 3);
    for (item, expect) in items.iter().zip([&fields[2].2, &fields[0].2, &fields[2].2]) {
        assert!(item.from_cache, "warm batch must hit the cache");
        assert_eq!(item.bytes, f32_bytes(expect));
    }

    // A codes batch decodes through the same wave path (mixed decoders included).
    let items = client.get_batch("snap", GetKind::Codes, &[1, 2]).unwrap();
    assert_eq!(
        items[0].bytes,
        fields[1]
            .3
            .iter()
            .flat_map(|s| s.to_le_bytes())
            .collect::<Vec<u8>>()
    );
    assert!(!items[0].from_cache);

    // Errors are typed and leave the connection usable: unknown archive, out-of-range
    // index, empty batch is fine.
    assert!(client.get_batch("nope", GetKind::Data, &[0]).is_err());
    assert!(client.get_batch("snap", GetKind::Data, &[7]).is_err());
    assert!(client
        .get_batch("snap", GetKind::Data, &[])
        .unwrap()
        .is_empty());

    // Stats report the batched waves, and the wave is never slower than serial.
    let stats = state.metrics_snapshot();
    assert_eq!(
        stats.batch_gets, 6,
        "every GETBATCH request counts, errors included"
    );
    assert_eq!(
        stats.batch_decoded_fields, 5,
        "3 data + 2 codes cold decodes"
    );
    assert!(stats.batch_serial_seconds > 0.0);
    assert!(stats.batch_batched_seconds > 0.0);
    assert!(stats.batch_batched_seconds <= stats.batch_serial_seconds + 1e-15);
    let json = {
        let mut c = Connection::connect(&addr).unwrap();
        c.stats().unwrap()
    };
    assert!(json.contains("\"batch\":{"), "stats JSON: {}", json);
    assert!(
        json.contains("\"decoded_fields\":5"),
        "stats JSON: {}",
        json
    );

    client.shutdown().unwrap();
    server_thread.join().unwrap();
}
