//! End-to-end daemon test: the acceptance scenario of the serving layer.
//!
//! Loads two archives, hammers the daemon with concurrent `GET`s from four client
//! threads, and asserts: every response is byte-identical to a direct `sz` decode, the
//! cache reports hits, misses, and (under a deliberately small byte budget) at least
//! one eviction, the byte budget is never exceeded, and the daemon shuts down cleanly.

use std::sync::Arc;

use datasets::{dataset_by_name, generate, Field};
use gpu_sim::{Gpu, GpuConfig};
use huffdec_container::ArchiveWriter;
use huffdec_core::DecoderKind;
use huffdec_serve::client::Client;
use huffdec_serve::net::ListenAddr;
use huffdec_serve::protocol::GetKind;
use huffdec_serve::server::{Server, ServerConfig};
use sz::{compress, decode_codes, decompress, Compressed, SzConfig};

const ELEMENTS: usize = 20_000;

struct TestArchive {
    name: &'static str,
    path: std::path::PathBuf,
    compressed: Compressed,
    reference_data: Vec<f32>,
    reference_codes: Vec<u16>,
    /// Actual element count (generators may round the request to fit their dims).
    elements: u64,
}

fn build_archive(
    dir: &std::path::Path,
    gpu: &Gpu,
    name: &'static str,
    dataset: &str,
    decoder: DecoderKind,
    seed: u64,
) -> TestArchive {
    let field: Field = generate(&dataset_by_name(dataset).unwrap(), ELEMENTS, seed);
    let compressed = compress(&field, &SzConfig::paper_default(decoder));
    let path = dir.join(format!("{}.hfz", name));
    let file = std::fs::File::create(&path).unwrap();
    let mut writer = ArchiveWriter::new(std::io::BufWriter::new(file));
    writer.write_compressed(&compressed).unwrap();
    writer.into_inner().unwrap();
    let reference_data = decompress(gpu, &compressed).unwrap().data;
    let reference_codes = decode_codes(gpu, &compressed).unwrap().symbols;
    let elements = reference_data.len() as u64;
    TestArchive {
        name,
        path,
        compressed,
        reference_data,
        reference_codes,
        elements,
    }
}

fn f32_bytes(values: &[f32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

#[test]
fn daemon_serves_concurrent_clients_with_eviction() {
    let dir = std::env::temp_dir().join("hfzd-daemon-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let gpu = Gpu::with_host_threads(GpuConfig::test_tiny(), 2);

    // Two archives with different decoders; one decoded field is 80 KB of f32s, so a
    // 100 KB budget can never hold both — the hammer must evict.
    let archives = Arc::new(vec![
        build_archive(
            &dir,
            &gpu,
            "hacc",
            "HACC",
            DecoderKind::OptimizedGapArray,
            1,
        ),
        build_archive(
            &dir,
            &gpu,
            "gamess",
            "GAMESS",
            DecoderKind::OptimizedSelfSync,
            2,
        ),
    ]);
    // 1.25 decoded fields: both can never be resident at once, so the hammer evicts.
    let field_bytes = archives.iter().map(|a| a.elements * 4).max().unwrap();
    let budget = field_bytes + field_bytes / 4;

    let config = ServerConfig {
        cache_bytes: budget,
        gpu: GpuConfig::test_tiny(),
        host_threads: 2,
    };
    let addr = ListenAddr::parse("tcp:127.0.0.1:0").unwrap();
    let server = Server::bind(&addr, &config).unwrap();
    let addr = server.local_addr();
    let state = server.state();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    // Load both archives over the protocol (the runtime LOAD path).
    {
        let mut client = Client::connect(&addr).unwrap();
        for archive in archives.iter() {
            let fields = client
                .load(archive.name, archive.path.to_str().unwrap())
                .unwrap();
            assert_eq!(fields, 1);
        }
        let list = client.list().unwrap();
        assert!(list.contains("\"hacc\"") && list.contains("\"gamess\""));
    }

    // Four client threads, each alternating archives and request shapes.
    let mut workers = Vec::new();
    for t in 0..4u64 {
        let addr = addr.clone();
        let archives = Arc::clone(&archives);
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            for i in 0..12u64 {
                let archive = &archives[((t + i) % 2) as usize];
                match i % 3 {
                    // Full data fetch: byte-identical to the direct decode.
                    0 | 1 => {
                        let r = client.get(archive.name, 0, GetKind::Data, None).unwrap();
                        assert_eq!(r.elements, archive.elements);
                        assert_eq!(r.bytes, f32_bytes(&archive.reference_data));
                    }
                    // Ranged data fetch: a slice of the same bytes.
                    _ => {
                        let start = (t * 997 + i * 131) % (archive.elements - 256);
                        let r = client
                            .get(archive.name, 0, GetKind::Data, Some((start, 256)))
                            .unwrap();
                        assert_eq!(r.elements, 256);
                        let lo = start as usize;
                        assert_eq!(r.bytes, f32_bytes(&archive.reference_data[lo..lo + 256]));
                    }
                }
            }
            // Ranged code fetches exercise the partial-decode path.
            for i in 0..4u64 {
                let archive = &archives[(i % 2) as usize];
                let start = (t * 3301 + i * 577) % (archive.elements - 512);
                let r = client
                    .get(archive.name, 0, GetKind::Codes, Some((start, 512)))
                    .unwrap();
                let lo = start as usize;
                let expected: Vec<u8> = archive.reference_codes[lo..lo + 512]
                    .iter()
                    .flat_map(|s| s.to_le_bytes())
                    .collect();
                assert_eq!(r.bytes, expected);
            }
        }));
    }
    for worker in workers {
        worker.join().unwrap();
    }

    // The cache behaved: hits and misses both happened, at least one eviction under
    // the deliberately small budget, and the budget held at all times (the cache's
    // invariant check runs inside insert; here we check the final accounting too).
    let cache = state.cache_stats();
    assert!(cache.hits > 0, "no cache hits: {:?}", cache);
    assert!(cache.misses > 0, "no cache misses: {:?}", cache);
    assert!(cache.evictions >= 1, "no evictions: {:?}", cache);
    assert!(state.cache_used_bytes() <= budget);

    let stats = state.serve_stats();
    assert!(stats.gets >= 4 * 16);
    let partials: u64 = stats.partial_decodes.iter().map(|c| c.count).sum();
    assert!(partials > 0, "partial decodes must have run");
    assert!(stats.partial_blocks_decoded < stats.partial_blocks_total);

    // The STATS document agrees with the in-process snapshot on evictions.
    {
        let mut client = Client::connect(&addr).unwrap();
        let json = client.stats().unwrap();
        assert!(
            json.contains(&format!("\"evictions\":{}", cache.evictions)),
            "stats JSON must report the evictions: {}",
            json
        );
        // VERIFY over the wire: both archives pass their digests.
        for archive in archives.iter() {
            let report = client.verify(archive.name).unwrap();
            assert!(report.contains("0 digest failures"), "{}", report);
        }
        assert_eq!(
            archives[0]
                .compressed
                .matches_decoded_crc(&archives[0].reference_codes),
            Some(true)
        );
        client.shutdown().unwrap();
    }
    server_thread.join().unwrap();

    // After shutdown the address no longer accepts (give the OS a beat to close).
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(
        Client::connect(&addr).is_err(),
        "daemon must stop accepting"
    );
}

#[test]
fn daemon_rejects_bad_requests_cleanly() {
    let config = ServerConfig {
        cache_bytes: 1 << 20,
        gpu: GpuConfig::test_tiny(),
        host_threads: 2,
    };
    let addr = ListenAddr::parse("tcp:127.0.0.1:0").unwrap();
    let server = Server::bind(&addr, &config).unwrap();
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let dir = std::env::temp_dir().join("hfzd-daemon-errors");
    std::fs::create_dir_all(&dir).unwrap();
    let gpu = Gpu::with_host_threads(GpuConfig::test_tiny(), 2);
    let archive = build_archive(&dir, &gpu, "solo", "CESM", DecoderKind::CuszBaseline, 3);

    let mut client = Client::connect(&addr).unwrap();
    client
        .load(archive.name, archive.path.to_str().unwrap())
        .unwrap();

    // Unknown archive, bad field index, out-of-range request, unloadable path: all are
    // remote errors, and the connection stays usable after each.
    assert!(client.get("nope", 0, GetKind::Data, None).is_err());
    assert!(client.get("solo", 5, GetKind::Data, None).is_err());
    assert!(client
        .get("solo", 0, GetKind::Data, Some((archive.elements, 1)))
        .is_err());
    assert!(client
        .get("solo", 0, GetKind::Codes, Some((u64::MAX, 2)))
        .is_err());
    assert!(client.load("bad", "/no/such/file.hfz").is_err());
    assert!(client.verify("nope").is_err());

    // The baseline (chunked) decoder serves ranges through per-chunk metadata.
    let r = client
        .get("solo", 0, GetKind::Codes, Some((4_000, 100)))
        .unwrap();
    assert!(r.partial);
    assert_eq!(
        r.as_u16(),
        &archive.reference_codes[4_000..4_100],
        "chunked partial decode must match the reference"
    );

    // And the connection still serves a clean full fetch before shutdown.
    let r = client.get("solo", 0, GetKind::Data, None).unwrap();
    assert_eq!(r.bytes, f32_bytes(&archive.reference_data));

    client.shutdown().unwrap();
    server_thread.join().unwrap();
}
