//! HTTP sidecar tests: `/metrics` must be valid Prometheus text exposition covering
//! every instrument, and `/healthz` must walk healthy → degraded → unhealthy.

use std::io::{Read, Write};
use std::sync::Arc;

use datasets::{dataset_by_name, generate};
use gpu_sim::GpuConfig;
use huffdec_codec::Codec;
use huffdec_container::ArchiveWriter;
use huffdec_core::DecoderKind;
use huffdec_metrics::{parse_prometheus, sample_value, Sample};
use huffdec_serve::http::MetricsServer;
use huffdec_serve::net::{connect, ListenAddr};
use huffdec_serve::protocol::{GetKind, Request, Response};
use huffdec_serve::server::{Health, Server, ServerConfig, ServerState};
use huffdec_serve::BackendKind;

/// Issues one `GET` against the sidecar and splits the response into
/// `(status, head, body)`.
fn http_get(addr: &ListenAddr, path: &str) -> (u16, String, String) {
    let mut conn = connect(addr).expect("sidecar accepts");
    conn.write_all(format!("GET {} HTTP/1.1\r\nHost: test\r\n\r\n", path).as_bytes())
        .unwrap();
    conn.flush().unwrap();
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).unwrap();
    let raw = String::from_utf8(raw).expect("responses are UTF-8");
    let (head, body) = raw.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), body.to_string())
}

fn write_archive(path: &std::path::Path, codec: &Codec, seed: u64) {
    let field = generate(&dataset_by_name("HACC").unwrap(), 20_000, seed);
    let compressed = codec.compress_archive(&field).unwrap();
    let file = std::fs::File::create(path).unwrap();
    let mut writer = ArchiveWriter::new(std::io::BufWriter::new(file));
    writer.write_compressed(&compressed).unwrap();
    writer.into_inner().unwrap();
}

/// Binds a daemon (protocol listener unused) plus its sidecar, with one archive
/// loaded. Returns the state and the sidecar address.
fn sidecar_fixture(dir_name: &str) -> (Arc<ServerState>, ListenAddr) {
    let dir = std::env::temp_dir().join(dir_name);
    std::fs::create_dir_all(&dir).unwrap();
    let config = ServerConfig {
        cache_bytes: 1 << 20,
        gpu: GpuConfig::test_tiny(),
        backend: BackendKind::from_env(),
        host_threads: 2,
        ..ServerConfig::default()
    };
    let server = Server::bind(&ListenAddr::parse("tcp:127.0.0.1:0").unwrap(), &config).unwrap();
    let state = server.state();
    // The protocol listener stays bound but unserved: requests are driven in-process
    // through `ServerState::handle`, which is exactly what `serve_connection` calls.
    std::mem::forget(server);

    let codec = Codec::builder()
        .gpu_config(GpuConfig::test_tiny())
        .host_threads(2)
        .decoder(DecoderKind::OptimizedGapArray)
        .build()
        .unwrap();
    let path = dir.join("field.hfz");
    write_archive(&path, &codec, 7);
    state.load_archive("field", path.to_str().unwrap()).unwrap();

    let sidecar = MetricsServer::bind(
        &ListenAddr::parse("tcp:127.0.0.1:0").unwrap(),
        Arc::clone(&state),
    )
    .unwrap();
    let addr = sidecar.local_addr().unwrap();
    std::thread::spawn(move || sidecar.run().unwrap());
    (state, addr)
}

/// Every histogram's `_bucket` series must be cumulative (monotone over `le`), end in
/// a `+Inf` bucket, and agree with its `_count`.
fn assert_histogram_coherent(samples: &[Sample], name: &str, labels: &[(&str, &str)]) {
    let buckets: Vec<&Sample> = samples
        .iter()
        .filter(|s| {
            s.name == format!("{}_bucket", name)
                && labels.iter().all(|(k, v)| s.label(k) == Some(*v))
        })
        .collect();
    assert!(!buckets.is_empty(), "no buckets for {} {:?}", name, labels);
    let mut prev = 0.0f64;
    let mut prev_le = f64::NEG_INFINITY;
    for bucket in &buckets {
        let le = bucket.label("le").expect("bucket carries le");
        let le = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse::<f64>().expect("numeric le")
        };
        assert!(le > prev_le, "{}: le must strictly increase", name);
        assert!(
            bucket.value >= prev,
            "{}: buckets must be cumulative ({} < {})",
            name,
            bucket.value,
            prev
        );
        prev_le = le;
        prev = bucket.value;
    }
    let last = buckets.last().unwrap();
    assert_eq!(
        last.label("le"),
        Some("+Inf"),
        "{}: last bucket is +Inf",
        name
    );
    let count = sample_value(samples, &format!("{}_count", name), labels)
        .unwrap_or_else(|| panic!("{}_count missing for {:?}", name, labels));
    assert_eq!(last.value, count, "{}: +Inf bucket must equal _count", name);
    assert!(
        sample_value(samples, &format!("{}_sum", name), labels).is_some(),
        "{}_sum missing",
        name
    );
}

#[test]
fn metrics_endpoint_serves_valid_exposition() {
    let (state, addr) = sidecar_fixture("hfzd-metrics-http");

    // Drive real traffic: a full GET (miss), the same GET again (hit), a ranged codes
    // GET (partial decode + index build), and one failing GET (decode path untouched).
    for _ in 0..2 {
        let r = state.handle(&Request::Get {
            archive: "field".into(),
            field: 0,
            kind: GetKind::Data,
            range: None,
        });
        assert!(matches!(r, Response::Get { .. }), "GET must succeed");
    }
    let r = state.handle(&Request::Get {
        archive: "field".into(),
        field: 0,
        kind: GetKind::Codes,
        range: Some((4_000, 256)),
    });
    assert!(matches!(r, Response::Get { partial: true, .. }));
    assert!(matches!(
        state.handle(&Request::Get {
            archive: "nope".into(),
            field: 0,
            kind: GetKind::Data,
            range: None,
        }),
        Response::Error(_)
    ));

    let (status, head, body) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "exposition content type: {}",
        head
    );

    // The document parses as exposition text, and each family has HELP + TYPE.
    let samples = parse_prometheus(&body).expect("exposition must parse");
    for family in [
        "hfz_requests_total",
        "hfz_gets_total",
        "hfz_batch_gets_total",
        "hfz_batch_fields_total",
        "hfz_batch_decoded_fields_total",
        "hfz_batch_serial_seconds_total",
        "hfz_batch_batched_seconds_total",
        "hfz_sched_coalesced_total",
        "hfz_sched_waves_total",
        "hfz_sched_wave_fields_total",
        "hfz_sched_multi_field_waves_total",
        "hfz_sched_shed_total",
        "hfz_sched_queue_depth",
        "hfz_cache_hits_total",
        "hfz_cache_misses_total",
        "hfz_cache_evictions_total",
        "hfz_cache_insertions_total",
        "hfz_cache_uncacheable_total",
        "hfz_cache_used_bytes",
        "hfz_cache_budget_bytes",
        "hfz_cache_entries",
        "hfz_archives_loaded",
        "hfz_decode_seconds",
        "hfz_index_build_seconds",
        "hfz_partial_decode_seconds",
        "hfz_partial_blocks_decoded_total",
        "hfz_partial_blocks_spanned_total",
        "hfz_decode_errors_total",
        "hfz_decode_bytes_in_total",
        "hfz_decode_bytes_out_total",
        "hfz_decode_occupancy_permille",
        "hfz_batch_occupancy_permille",
        "hfz_backend",
        "hfz_encode_seconds",
        "hfz_encode_phase_seconds_total",
        "hfz_encode_bytes_in_total",
        "hfz_encode_bytes_out_total",
    ] {
        assert!(
            body.contains(&format!("# HELP {} ", family)),
            "HELP missing for {}",
            family
        );
        assert!(
            body.contains(&format!("# TYPE {} ", family)),
            "TYPE missing for {}",
            family
        );
    }

    // The traffic above is visible: 4 requests, 4 gets, one hit and one miss, one full
    // decode and one partial decode of the gap-array decoder, an index build, bytes.
    let v = |name: &str| sample_value(&samples, name, &[]).unwrap_or_else(|| panic!("{}", name));
    // The identity series names whichever backend the daemon was built on, and the
    // full decode above published its perf-model occupancy.
    assert_eq!(
        sample_value(
            &samples,
            "hfz_backend",
            &[("name", BackendKind::from_env().name())]
        ),
        Some(1.0)
    );
    assert!(v("hfz_decode_occupancy_permille") > 0.0);
    assert_eq!(v("hfz_requests_total"), 4.0);
    assert_eq!(v("hfz_gets_total"), 4.0);
    assert_eq!(v("hfz_cache_hits_total"), 1.0);
    // Two misses: the cold full fetch, and the ranged codes fetch's lookup (ranges of
    // a cached full representation would hit).
    assert_eq!(v("hfz_cache_misses_total"), 2.0);
    assert_eq!(v("hfz_archives_loaded"), 1.0);
    assert!(v("hfz_decode_bytes_out_total") > 0.0);
    let gap = [("decoder", "opt. gap-array")];
    assert_eq!(
        sample_value(&samples, "hfz_decode_seconds_count", &gap),
        Some(1.0)
    );
    assert_eq!(
        sample_value(&samples, "hfz_partial_decode_seconds_count", &gap),
        Some(1.0)
    );
    assert_eq!(
        sample_value(&samples, "hfz_index_build_seconds_count", &gap),
        Some(1.0)
    );

    // Histogram series are internally coherent, for every decoder label.
    for kind in DecoderKind::all() {
        let labels = [("decoder", kind.name())];
        assert_histogram_coherent(&samples, "hfz_decode_seconds", &labels);
        assert_histogram_coherent(&samples, "hfz_index_build_seconds", &labels);
        assert_histogram_coherent(&samples, "hfz_partial_decode_seconds", &labels);
    }
    assert_histogram_coherent(&samples, "hfz_encode_seconds", &[]);

    // Unknown paths and non-GET methods are typed refusals, not hangs.
    assert_eq!(http_get(&addr, "/nope").0, 404);
    {
        let mut conn = connect(&addr).unwrap();
        conn.write_all(b"POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut raw = Vec::new();
        conn.read_to_end(&mut raw).unwrap();
        assert!(String::from_utf8(raw).unwrap().starts_with("HTTP/1.1 405"));
    }
}

#[test]
fn healthz_walks_healthy_degraded_unhealthy() {
    let (state, addr) = sidecar_fixture("hfzd-healthz-http");

    // Fresh daemon: healthy.
    let (status, _, body) = http_get(&addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "healthy\n");

    // A decode error in the window degrades (but stays 200: still serving).
    state.metrics().decode_errors.inc();
    let (status, _, body) = http_get(&addr, "/healthz");
    assert_eq!(status, 200);
    assert!(
        body.starts_with("degraded: 1 decode errors"),
        "body: {}",
        body
    );

    // A quiet window clears the degradation.
    let (status, _, body) = http_get(&addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "healthy\n");

    // Cache thrash — evictions while misses outnumber hits — degrades too.
    state.metrics().cache_evictions.add(3);
    state.metrics().cache_misses.add(5);
    state.metrics().cache_hits.add(1);
    let (status, _, body) = http_get(&addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.starts_with("degraded: cache thrash"), "body: {}", body);

    // Shutdown: the flag flips, the running sidecar drains. A fresh sidecar bound on
    // the same (now unhealthy) state proves the 503 rendering deterministically: its
    // first accept is served inline, then the loop exits.
    state.request_shutdown();
    assert!(matches!(state.health(), Health::Unhealthy(_)));
    let sidecar = MetricsServer::bind(
        &ListenAddr::parse("tcp:127.0.0.1:0").unwrap(),
        Arc::clone(&state),
    )
    .unwrap();
    let addr2 = sidecar.local_addr().unwrap();
    let drain = std::thread::spawn(move || sidecar.run().unwrap());
    let (status, _, body) = http_get(&addr2, "/healthz");
    assert_eq!(status, 503);
    assert_eq!(body, "unhealthy: shutting down\n");
    drain.join().unwrap();
}
