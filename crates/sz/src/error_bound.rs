//! Error-bound modes.
//!
//! SZ-family compressors are *error bounded*: the user chooses a bound and the compressor
//! guarantees `|reconstructed - original| <= bound` point-wise. The paper's evaluation
//! uses the point-wise **relative** error bound mode (relative to the field's value
//! range), with 1e-3 as the headline setting; Fig. 2 sweeps it.

/// An error bound specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Absolute point-wise bound: `|x' - x| <= value`.
    Absolute(f64),
    /// Range-relative point-wise bound: `|x' - x| <= value * (max - min)`.
    Relative(f64),
}

impl ErrorBound {
    /// The paper's headline setting: relative error bound 1e-3.
    pub fn paper_default() -> Self {
        ErrorBound::Relative(1e-3)
    }

    /// Converts the bound to an absolute bound for a field with the given value range.
    ///
    /// A degenerate (zero-range) field gets a tiny positive bound so quantization is
    /// still well-defined.
    pub fn to_absolute(&self, value_range: f64) -> f64 {
        let abs = match *self {
            ErrorBound::Absolute(v) => v,
            ErrorBound::Relative(v) => v * value_range.abs(),
        };
        if abs <= 0.0 {
            f64::EPSILON
        } else {
            abs
        }
    }

    /// The numeric parameter of the bound (used for labelling experiment output).
    pub fn value(&self) -> f64 {
        match *self {
            ErrorBound::Absolute(v) | ErrorBound::Relative(v) => v,
        }
    }

    /// True if this is a relative bound.
    pub fn is_relative(&self) -> bool {
        matches!(self, ErrorBound::Relative(_))
    }

    /// Stable `(mode tag, value)` pair used by serialized archive formats
    /// (0 = absolute, 1 = relative).
    pub fn wire_parts(&self) -> (u8, f64) {
        match *self {
            ErrorBound::Absolute(v) => (0, v),
            ErrorBound::Relative(v) => (1, v),
        }
    }

    /// Inverse of [`ErrorBound::wire_parts`]; `None` for unknown tags or non-finite
    /// values (which can only come from a corrupted archive).
    pub fn from_wire_parts(tag: u8, value: f64) -> Option<ErrorBound> {
        if !value.is_finite() {
            return None;
        }
        match tag {
            0 => Some(ErrorBound::Absolute(value)),
            1 => Some(ErrorBound::Relative(value)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_bound_scales_with_range() {
        let eb = ErrorBound::Relative(1e-3);
        assert!((eb.to_absolute(100.0) - 0.1).abs() < 1e-12);
        assert!((eb.to_absolute(1.0) - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn absolute_bound_ignores_range() {
        let eb = ErrorBound::Absolute(0.5);
        assert_eq!(eb.to_absolute(100.0), 0.5);
        assert_eq!(eb.to_absolute(0.0), 0.5);
    }

    #[test]
    fn zero_range_still_positive() {
        let eb = ErrorBound::Relative(1e-3);
        assert!(eb.to_absolute(0.0) > 0.0);
    }

    #[test]
    fn paper_default_is_relative_1e3() {
        let eb = ErrorBound::paper_default();
        assert!(eb.is_relative());
        assert!((eb.value() - 1e-3).abs() < 1e-15);
    }
}
