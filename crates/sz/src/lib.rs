//! # sz — error-bounded lossy compression substrate (cuSZ model)
//!
//! A from-scratch reimplementation of the compression pipeline the paper's Huffman
//! decoders live inside: cuSZ's Lorenzo-predictor dual-quantization with a configurable
//! point-wise error bound, outlier handling, and Huffman coding of the resulting
//! multi-byte quantization codes.
//!
//! * [`error_bound`] — absolute and range-relative error-bound modes;
//! * [`lorenzo`] — 1D–4D Lorenzo prediction with dual quantization and outliers;
//! * [`pipeline`] — the end-to-end compress / decompress pipeline, parameterized by which
//!   Huffman decoder ([`huffdec_core::DecoderKind`]) the archive targets, with simulated
//!   decompression timing (Huffman kernels + reconstruction kernels + optional PCIe
//!   transfer) for the paper's Figs. 4 and 5;
//! * [`stats`] — error-bound verification and PSNR.
//!
//! ## Example
//!
//! ```
//! use datasets::{dataset_by_name, generate};
//! use gpu_sim::Gpu;
//! use huffdec_core::DecoderKind;
//! use sz::{compress, decompress, SzConfig};
//!
//! let spec = dataset_by_name("HACC").unwrap();
//! let field = generate(&spec, 50_000, 42);
//! let gpu = Gpu::v100();
//!
//! let config = SzConfig::paper_default(DecoderKind::OptimizedGapArray);
//! let compressed = compress(&field, &config);
//! let decompressed = decompress(&gpu, &compressed).unwrap();
//!
//! assert_eq!(decompressed.data.len(), field.len());
//! assert!(sz::verify_error_bound(&field.data, &decompressed.data, 1e-3 * field.range_span() as f64).is_none());
//! ```

#![warn(missing_docs)]

pub mod error_bound;
pub mod lorenzo;
pub mod pipeline;
pub mod stats;

pub use error_bound::ErrorBound;
pub use huffdec_core::DecodeError;
pub use lorenzo::{dequantize, quantize, Outlier, Quantized};
pub use pipeline::{
    compress, compress_on, decode_codes, decode_payload, decode_payload_batch, decompress,
    decompress_batch, decompress_with_transfer, field_zero_fraction, outlier_scatter_time,
    quantize_kernel_time, reconstruct_kernel_time, roundtrip, BatchDecompressStats, CompressStats,
    Compressed, DecompressStats, Decompressed, SzConfig, DEFAULT_ALPHABET_SIZE,
};
pub use stats::{max_abs_error, psnr, verify_error_bound};
