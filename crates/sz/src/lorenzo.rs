//! Lorenzo prediction with dual quantization (the cuSZ compression model).
//!
//! cuSZ's prediction/quantization stage works in two steps ("dual quantization"):
//!
//! 1. **Pre-quantization** — every value is rounded to an integer multiple of twice the
//!    error bound: `q = round(v / (2·eb))`. This alone already guarantees the point-wise
//!    error bound on reconstruction.
//! 2. **Lorenzo prediction on the integer grid** — each pre-quantized value is predicted
//!    from its already-processed neighbours with the n-dimensional Lorenzo predictor
//!    (inclusion–exclusion over the 2ⁿ−1 preceding corner neighbours), and the integer
//!    residual is mapped into a bounded quantization-code alphabet centred at
//!    `alphabet/2`. Residuals that do not fit are **outliers** and are stored exactly.
//!
//! Because prediction happens on the pre-quantized integers, compression and
//! decompression use exactly the same neighbour values and the scheme is parallelizable —
//! this is the property cuSZ exploits on the GPU, and what lets reconstruction here be a
//! simple scan.

use datasets::Dims;

/// An outlier: a pre-quantized value whose Lorenzo residual did not fit the code alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outlier {
    /// Flat element index.
    pub index: u64,
    /// The exact pre-quantized integer value.
    pub prequant: i64,
}

/// Output of the prediction/quantization stage.
#[derive(Debug, Clone)]
pub struct Quantized {
    /// One code per element, in `[0, alphabet_size)`; outliers carry the code
    /// `alphabet_size / 2` placeholder and are listed in `outliers`.
    pub codes: Vec<u16>,
    /// Outliers, sorted by index.
    pub outliers: Vec<Outlier>,
    /// The alphabet size used.
    pub alphabet_size: usize,
    /// Twice the absolute error bound (the quantization step).
    pub step: f64,
    /// Field dimensions.
    pub dims: Dims,
}

impl Quantized {
    /// Fraction of elements that are outliers.
    pub fn outlier_ratio(&self) -> f64 {
        if self.codes.is_empty() {
            0.0
        } else {
            self.outliers.len() as f64 / self.codes.len() as f64
        }
    }

    /// Bytes needed to store the outliers (index + value).
    pub fn outlier_bytes(&self) -> u64 {
        self.outliers.len() as u64 * 12
    }
}

fn strides_of(extents: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; extents.len()];
    for d in (0..extents.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * extents[d + 1];
    }
    strides
}

/// The n-dimensional Lorenzo prediction of element `coord` from the pre-quantized grid
/// `q`, using inclusion–exclusion over the preceding corner neighbours. Out-of-range
/// neighbours contribute 0.
fn lorenzo_predict(q: &[i64], coord: &[usize], extents: &[usize], strides: &[usize]) -> i64 {
    let ndim = extents.len();
    let mut pred = 0i64;
    // Each non-empty subset of dimensions contributes q[coord - subset] with sign
    // (-1)^(|subset|+1).
    for mask in 1u32..(1 << ndim) {
        let mut ok = true;
        let mut idx = 0usize;
        for (d, &c) in coord.iter().enumerate() {
            let back = (mask >> d) & 1 == 1;
            if back {
                if c == 0 {
                    ok = false;
                    break;
                }
                idx += (c - 1) * strides[d];
            } else {
                idx += c * strides[d];
            }
        }
        if !ok {
            continue;
        }
        let sign = if mask.count_ones() % 2 == 1 { 1 } else { -1 };
        pred += sign * q[idx];
    }
    pred
}

/// Pre-quantizes, Lorenzo-predicts, and encodes a field into quantization codes.
///
/// `step` must be twice the absolute error bound. `alphabet_size` is the number of
/// quantization bins (1024 in cuSZ by default).
pub fn quantize(data: &[f32], dims: Dims, step: f64, alphabet_size: usize) -> Quantized {
    assert!(step > 0.0, "quantization step must be positive");
    assert!(
        (4..=65536).contains(&alphabet_size),
        "alphabet size out of range"
    );
    assert_eq!(dims.len(), data.len(), "dims do not match data length");

    let radius = (alphabet_size / 2) as i64;
    let extents = dims.as_vec();
    let strides = strides_of(&extents);
    let ndim = extents.len();

    // Step 1: pre-quantization.
    let prequant: Vec<i64> = data
        .iter()
        .map(|&v| (v as f64 / step).round() as i64)
        .collect();

    // Step 2: Lorenzo prediction + residual coding.
    let mut codes = vec![0u16; data.len()];
    let mut outliers = Vec::new();
    let mut coord = vec![0usize; ndim];
    for idx in 0..data.len() {
        let mut rem = idx;
        for d in (0..ndim).rev() {
            coord[d] = rem % extents[d];
            rem /= extents[d];
        }
        let pred = lorenzo_predict(&prequant, &coord, &extents, &strides);
        let residual = prequant[idx] - pred;
        if residual >= -radius && residual < radius {
            codes[idx] = (residual + radius) as u16;
        } else {
            codes[idx] = radius as u16; // placeholder: decoded as residual 0, then patched.
            outliers.push(Outlier {
                index: idx as u64,
                prequant: prequant[idx],
            });
        }
    }

    Quantized {
        codes,
        outliers,
        alphabet_size,
        step,
        dims,
    }
}

/// Reconstructs the field from quantization codes and outliers. The result satisfies the
/// original error bound (`step / 2`) point-wise.
pub fn dequantize(q: &Quantized) -> Vec<f32> {
    let radius = (q.alphabet_size / 2) as i64;
    let extents = q.dims.as_vec();
    let strides = strides_of(&extents);
    let ndim = extents.len();

    let mut prequant = vec![0i64; q.codes.len()];
    let mut outlier_iter = q.outliers.iter().peekable();
    let mut coord = vec![0usize; ndim];
    for idx in 0..q.codes.len() {
        let mut rem = idx;
        for d in (0..ndim).rev() {
            coord[d] = rem % extents[d];
            rem /= extents[d];
        }
        let pred = lorenzo_predict(&prequant, &coord, &extents, &strides);
        let is_outlier = outlier_iter
            .peek()
            .map(|o| o.index == idx as u64)
            .unwrap_or(false);
        prequant[idx] = if is_outlier {
            outlier_iter.next().unwrap().prequant
        } else {
            pred + (q.codes[idx] as i64 - radius)
        };
    }

    prequant
        .iter()
        .map(|&p| (p as f64 * q.step) as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_roundtrip(data: &[f32], dims: Dims, eb: f64, alphabet: usize) -> Quantized {
        let q = quantize(data, dims, 2.0 * eb, alphabet);
        let rec = dequantize(&q);
        assert_eq!(rec.len(), data.len());
        for (i, (&orig, &r)) in data.iter().zip(rec.iter()).enumerate() {
            // Allow for f32 representation error of the reconstructed value on top of
            // the quantization bound.
            assert!(
                (orig - r).abs() as f64 <= eb * (1.0 + 1e-4) + orig.abs() as f64 * 1e-6 + 1e-9,
                "element {}: |{} - {}| > {}",
                i,
                orig,
                r,
                eb
            );
        }
        q
    }

    #[test]
    fn roundtrip_1d_smooth() {
        let data: Vec<f32> = (0..5000).map(|i| (i as f32 * 0.01).sin()).collect();
        let q = check_roundtrip(&data, Dims::D1(5000), 1e-3, 1024);
        assert!(q.outlier_ratio() < 0.01);
        // Smooth data should produce codes concentrated around the radius.
        let radius = 512u16;
        let near = q
            .codes
            .iter()
            .filter(|&&c| (c as i32 - radius as i32).abs() <= 8)
            .count();
        assert!(near as f64 > 0.9 * q.codes.len() as f64);
    }

    #[test]
    fn roundtrip_2d() {
        let (rows, cols) = (64, 80);
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| {
                let r = (i / cols) as f32;
                let c = (i % cols) as f32;
                (0.05 * r).cos() + (0.03 * c).sin()
            })
            .collect();
        check_roundtrip(&data, Dims::D2(rows, cols), 1e-3, 1024);
    }

    #[test]
    fn roundtrip_3d() {
        let (a, b, c) = (16, 20, 24);
        let data: Vec<f32> = (0..a * b * c)
            .map(|i| {
                let x = (i % c) as f32;
                let y = ((i / c) % b) as f32;
                let z = (i / (b * c)) as f32;
                0.2 * x + 0.1 * (y * 0.3).sin() + 0.05 * z * z / 100.0
            })
            .collect();
        check_roundtrip(&data, Dims::D3(a, b, c), 5e-4, 1024);
    }

    #[test]
    fn roundtrip_4d() {
        let dims = Dims::D4(4, 6, 8, 10);
        let data: Vec<f32> = (0..dims.len())
            .map(|i| ((i as f32) * 0.013).cos())
            .collect();
        check_roundtrip(&data, dims, 1e-3, 1024);
    }

    #[test]
    fn noisy_data_respects_bound_and_produces_outliers_when_needed() {
        // Large jumps relative to the tiny alphabet force outliers.
        let data: Vec<f32> = (0..2000)
            .map(|i| {
                if i % 100 == 0 {
                    100.0
                } else {
                    (i as f32 * 0.001).sin()
                }
            })
            .collect();
        let q = check_roundtrip(&data, Dims::D1(2000), 1e-4, 16);
        assert!(!q.outliers.is_empty());
        assert!(q.outlier_bytes() > 0);
    }

    #[test]
    fn smoother_data_yields_more_concentrated_codes() {
        let smooth: Vec<f32> = (0..20_000).map(|i| (i as f32 * 0.0005).sin()).collect();
        let rough: Vec<f32> = (0..20_000)
            .map(|i| {
                let r = (i as u32).wrapping_mul(2654435761) as f32 / u32::MAX as f32;
                r * 2.0 - 1.0
            })
            .collect();
        let qs = quantize(&smooth, Dims::D1(20_000), 2e-3, 1024);
        let qr = quantize(&rough, Dims::D1(20_000), 2e-3, 1024);
        let spread = |q: &Quantized| {
            let mean = 512.0;
            q.codes
                .iter()
                .map(|&c| (c as f64 - mean).abs())
                .sum::<f64>()
                / q.codes.len() as f64
        };
        assert!(spread(&qs) < spread(&qr));
    }

    #[test]
    fn constant_field_is_all_center_codes() {
        let data = vec![3.5f32; 1000];
        let q = quantize(&data, Dims::D1(1000), 2e-3, 1024);
        // First element predicts from nothing (pred 0) so it may be an outlier; all
        // subsequent elements predict exactly.
        assert!(q.codes[1..].iter().all(|&c| c == 512));
        let rec = dequantize(&q);
        assert!(rec.iter().all(|&v| (v - 3.5).abs() <= 1e-3 + 1e-6));
    }

    #[test]
    fn lorenzo_2d_predicts_planes_exactly() {
        // A plane a*x + b*y is predicted exactly by the 2D Lorenzo predictor (residual 0
        // except on the boundary row/column).
        let (rows, cols) = (32, 32);
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| 0.37 * (i / cols) as f32 + 0.21 * (i % cols) as f32)
            .collect();
        let q = quantize(&data, Dims::D2(rows, cols), 2e-3, 1024);
        let interior_nonzero = (0..rows * cols)
            .filter(|&i| i / cols > 0 && i % cols > 0)
            .filter(|&i| q.codes[i] != 512)
            .count();
        // Allow a few rounding-induced ±1 codes.
        assert!(interior_nonzero < rows * cols / 20);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        let _ = quantize(&[1.0], Dims::D1(1), 0.0, 1024);
    }
}
