//! The full cuSZ-style compression / decompression pipeline.
//!
//! Compression: Lorenzo dual-quantization → Huffman encoding (in whichever stream format
//! the chosen decoder consumes) → outlier list. Decompression: Huffman decoding on the
//! simulated GPU (this is the part the paper optimizes) → reverse dual-quantization →
//! outlier patching.
//!
//! The decompression timing combines the simulated Huffman phase breakdown with an
//! analytic cost for the (memory-bound) reconstruction kernels, so the overall
//! decompression throughput figures of the paper (Figs. 4 and 5) can be regenerated.

use datasets::Field;
use gpu_sim::TransferDirection;
use huffdec_backend::Backend;
use huffdec_core::{
    compress_for, decode, wire, CompressedPayload, DecodeError, DecoderKind, EncodePhaseBreakdown,
    PhaseBreakdown,
};

use crate::error_bound::ErrorBound;
use crate::lorenzo::{dequantize, quantize, Outlier, Quantized};
use crate::stats::verify_error_bound;
use datasets::Dims;

/// Default number of quantization bins, as in cuSZ.
pub const DEFAULT_ALPHABET_SIZE: usize = 1024;

/// Compression configuration.
#[derive(Debug, Clone, Copy)]
pub struct SzConfig {
    /// The error bound to honour.
    pub error_bound: ErrorBound,
    /// Number of quantization bins (must be a power of two ≥ 4; cuSZ uses 1024).
    pub alphabet_size: usize,
    /// Which Huffman decoder the archive targets (decides the stream format: chunked for
    /// the baseline, flat for self-sync, flat + gap array for gap-array decoding).
    pub decoder: DecoderKind,
}

impl SzConfig {
    /// The paper's headline configuration: relative error bound 1e-3, 1024 bins.
    pub fn paper_default(decoder: DecoderKind) -> Self {
        SzConfig {
            error_bound: ErrorBound::paper_default(),
            alphabet_size: DEFAULT_ALPHABET_SIZE,
            decoder,
        }
    }
}

impl Default for SzConfig {
    fn default() -> Self {
        SzConfig::paper_default(DecoderKind::OptimizedGapArray)
    }
}

/// A compressed field.
///
/// The decoder kind and alphabet size live only in [`Compressed::config`] — they were
/// previously duplicated as standalone fields, which let the two copies diverge.
#[derive(Debug, Clone)]
pub struct Compressed {
    /// The Huffman-encoded quantization codes.
    pub payload: CompressedPayload,
    /// Outliers that did not fit the quantization alphabet.
    pub outliers: Vec<Outlier>,
    /// Field dimensions.
    pub dims: Dims,
    /// Quantization step (twice the absolute error bound used).
    pub step: f64,
    /// The configuration the archive was produced with (the single source of truth for
    /// the target decoder and the alphabet size).
    pub config: SzConfig,
    /// CRC32 over the decoded symbol stream (the quantization codes, serialized LE).
    /// Stamped by [`compress`] / [`compress_on`] and stored by the container as the
    /// decoded-CRC trailer section, so deep verification can catch archives whose
    /// sections are individually CRC-valid but decode to the wrong codes. `None` for
    /// archives written before the trailer existed.
    pub decoded_crc: Option<u32>,
}

impl Compressed {
    /// The decoder this archive targets.
    ///
    /// ```
    /// use datasets::{dataset_by_name, generate};
    /// use huffdec_core::DecoderKind;
    /// use sz::{compress, SzConfig};
    ///
    /// let field = generate(&dataset_by_name("HACC").unwrap(), 10_000, 1);
    /// let compressed = compress(&field, &SzConfig::paper_default(DecoderKind::OptimizedSelfSync));
    /// assert_eq!(compressed.decoder(), DecoderKind::OptimizedSelfSync);
    /// ```
    pub fn decoder(&self) -> DecoderKind {
        self.config.decoder
    }

    /// Quantization alphabet size.
    ///
    /// ```
    /// use datasets::{dataset_by_name, generate};
    /// use huffdec_core::DecoderKind;
    /// use sz::{compress, SzConfig, DEFAULT_ALPHABET_SIZE};
    ///
    /// let field = generate(&dataset_by_name("CESM").unwrap(), 10_000, 1);
    /// let compressed = compress(&field, &SzConfig::default());
    /// assert_eq!(compressed.alphabet_size(), DEFAULT_ALPHABET_SIZE);
    /// ```
    pub fn alphabet_size(&self) -> usize {
        self.config.alphabet_size
    }

    /// Number of data elements.
    pub fn num_elements(&self) -> usize {
        self.dims.len()
    }

    /// Uncompressed size in bytes (single-precision input).
    pub fn original_bytes(&self) -> u64 {
        self.num_elements() as u64 * 4
    }

    /// Size of the quantization codes in bytes (2 bytes per element) — the denominator
    /// the paper uses for Huffman decoding throughput.
    pub fn quant_code_bytes(&self) -> u64 {
        self.num_elements() as u64 * 2
    }

    /// Total compressed size in bytes, as the `HFZ1` container stores this field: the
    /// archive header, the payload sections (stream + codebook + optional gap array),
    /// the outlier section, and the end marker — matching `huffdec_container::to_bytes`
    /// byte for byte (a cross-crate test enforces this), so Table IV ratios and Fig. 5
    /// transfer costs use the honest stored size.
    ///
    /// ```
    /// use datasets::{dataset_by_name, generate};
    /// use sz::{compress, SzConfig};
    ///
    /// let field = generate(&dataset_by_name("Nyx").unwrap(), 10_000, 3);
    /// let compressed = compress(&field, &SzConfig::default());
    /// // Exactly the bytes the HFZ1 container stores for this field.
    /// let stored = huffdec_container::to_bytes(&compressed).unwrap();
    /// assert_eq!(compressed.compressed_bytes(), stored.len() as u64);
    /// assert!(compressed.compressed_bytes() < compressed.original_bytes());
    /// ```
    pub fn compressed_bytes(&self) -> u64 {
        let digest = if self.decoded_crc.is_some() {
            wire::decoded_crc_section()
        } else {
            0
        };
        wire::ARCHIVE_HEADER
            + self.payload.compressed_bytes()
            + wire::outliers_section(self.outliers.len())
            + digest
            + wire::END_SECTION
    }

    /// Checks `symbols` against the stored decoded-stream digest: `Some(true)` when the
    /// digest matches, `Some(false)` when it does not, `None` when the archive carries
    /// no digest.
    pub fn matches_decoded_crc(&self, symbols: &[u16]) -> Option<bool> {
        self.decoded_crc
            .map(|stored| stored == huffdec_core::crc32_symbols(symbols))
    }

    /// Overall compression ratio (f32 input over compressed bytes).
    pub fn overall_compression_ratio(&self) -> f64 {
        self.original_bytes() as f64 / self.compressed_bytes() as f64
    }

    /// Huffman-only compression ratio (quantization codes over their encoding), as in
    /// Table IV.
    pub fn huffman_compression_ratio(&self) -> f64 {
        self.payload.compression_ratio()
    }
}

/// Timing breakdown of a decompression run.
#[derive(Debug, Clone)]
pub struct DecompressStats {
    /// The Huffman decoding phase breakdown (simulated kernels).
    pub huffman: PhaseBreakdown,
    /// Estimated time of the reverse dual-quantization / Lorenzo reconstruction kernels.
    pub reconstruct_seconds: f64,
    /// Estimated time of the outlier scatter kernel.
    pub outlier_scatter_seconds: f64,
    /// Host-to-device transfer time of the compressed archive (only included in
    /// `total_seconds` when decompressing with transfer, as in Fig. 5).
    pub h2d_transfer_seconds: f64,
    /// Total decompression time in seconds.
    pub total_seconds: f64,
}

impl DecompressStats {
    /// Overall decompression throughput in GB/s relative to the uncompressed data size,
    /// the convention of Figs. 4 and 5.
    pub fn overall_throughput_gbs(&self, original_bytes: u64) -> f64 {
        if self.total_seconds <= 0.0 {
            0.0
        } else {
            original_bytes as f64 / self.total_seconds / 1e9
        }
    }
}

/// A decompressed field plus its timing.
#[derive(Debug, Clone)]
pub struct Decompressed {
    /// Reconstructed data.
    pub data: Vec<f32>,
    /// Timing breakdown.
    pub stats: DecompressStats,
}

/// Timing breakdown of a compression run on the simulated GPU (produced by
/// [`compress_on`]; the host path [`compress`] does not time itself).
#[derive(Debug, Clone)]
pub struct CompressStats {
    /// Estimated time of the Lorenzo dual-quantization kernel.
    pub quantize_seconds: f64,
    /// The simulated Huffman encode phase breakdown
    /// (histogram / tree+codebook / offset prefix-sum / scatter).
    pub encode: EncodePhaseBreakdown,
    /// Total compression time in seconds.
    pub total_seconds: f64,
}

impl CompressStats {
    /// Huffman encoding throughput in GB/s relative to the quantization-code bytes
    /// (2 per element), the same denominator the decode tables use.
    pub fn encode_throughput_gbs(&self, quant_code_bytes: u64) -> f64 {
        self.encode.throughput_gbs(quant_code_bytes)
    }

    /// Overall compression throughput in GB/s relative to the uncompressed f32 bytes.
    pub fn overall_throughput_gbs(&self, original_bytes: u64) -> f64 {
        if self.total_seconds <= 0.0 {
            0.0
        } else {
            original_bytes as f64 / self.total_seconds / 1e9
        }
    }
}

/// Estimated time of the Lorenzo dual-quantization kernel: one f32 read, one prediction
/// neighbourhood re-read (cached, charged as half), and one 2-byte code write per
/// element, a few cycles of compute, one launch.
pub fn quantize_kernel_time(gpu: &dyn Backend, num_elements: usize) -> f64 {
    let cfg = gpu.config();
    let traffic_bytes = num_elements as f64 * 8.0;
    let mem_time = traffic_bytes / (cfg.mem_bandwidth_gbps * 1e9);
    let compute_cycles =
        num_elements as f64 * 6.0 / (cfg.num_sms as f64 * cfg.issue_slots_per_sm as f64);
    let compute_time = cfg.cycles_to_seconds(compute_cycles);
    mem_time.max(compute_time) + cfg.kernel_launch_overhead_us * 1e-6
}

fn quantize_field(field: &Field, config: &SzConfig) -> (Quantized, f64) {
    let range = field.range_span() as f64;
    let eb_abs = config.error_bound.to_absolute(range);
    let step = 2.0 * eb_abs;
    let q = quantize(&field.data, field.dims, step, config.alphabet_size);
    (q, step)
}

fn assemble(q: Quantized, step: f64, config: &SzConfig, payload: CompressedPayload) -> Compressed {
    let decoded_crc = Some(huffdec_core::crc32_symbols(&q.codes));
    Compressed {
        payload,
        outliers: q.outliers,
        dims: q.dims,
        step,
        config: *config,
        decoded_crc,
    }
}

/// The fraction of a field's quantization codes that land in the center ("zero
/// residual") bin — the sparsity statistic automatic hybrid selection thresholds on.
/// Quantizes the field without encoding it.
pub fn field_zero_fraction(field: &Field, config: &SzConfig) -> f64 {
    let (q, _) = quantize_field(field, config);
    huffdec_hybrid::zero_fraction(&q.codes, config.alphabet_size)
}

/// Compresses a field with the single-threaded host encoder.
///
/// [`DecoderKind::RleHybrid`] dispatches to the `huffdec-hybrid` RLE+Huffman encoder
/// (format v2); every dense decoder goes through [`huffdec_core::compress_for`].
pub fn compress(field: &Field, config: &SzConfig) -> Compressed {
    let (q, step) = quantize_field(field, config);
    let payload = if config.decoder.is_hybrid() {
        huffdec_hybrid::compress_hybrid(&q.codes, config.alphabet_size)
    } else {
        compress_for(config.decoder, &q.codes, config.alphabet_size)
    };
    assemble(q, step, config, payload)
}

/// Compresses a field with the simulated-GPU parallel encode pipeline
/// ([`huffdec_core::compress_on`]), returning the archive (bit-identical to
/// [`compress`]) and the compression timing breakdown.
pub fn compress_on(
    gpu: &dyn Backend,
    field: &Field,
    config: &SzConfig,
) -> (Compressed, CompressStats) {
    let quantize_start = std::time::Instant::now();
    let (q, step) = quantize_field(field, config);
    let quantize_elapsed = quantize_start.elapsed().as_secs_f64();
    let (payload, encode) = if config.decoder.is_hybrid() {
        huffdec_hybrid::compress_hybrid_on(gpu, &q.codes, config.alphabet_size)
    } else {
        huffdec_core::compress_on(gpu, config.decoder, &q.codes, config.alphabet_size)
    };
    let quantize_seconds =
        gpu.charge_seconds(quantize_kernel_time(gpu, field.len()), quantize_elapsed);
    let total_seconds = quantize_seconds + encode.total_seconds();
    let stats = CompressStats {
        quantize_seconds,
        encode,
        total_seconds,
    };
    (assemble(q, step, config, payload), stats)
}

/// Estimated time of the reverse dual-quantization (Lorenzo reconstruction) kernels.
///
/// cuSZ reconstructs with scan-style kernels that are memory-bound: the model charges one
/// read of the 2-byte codes, one intermediate 4-byte partial-sum read+write, and one
/// 4-byte output write per element (14 bytes/element of DRAM traffic), a few cycles of
/// compute per element, and two kernel launches.
pub fn reconstruct_kernel_time(gpu: &dyn Backend, num_elements: usize) -> f64 {
    let cfg = gpu.config();
    let traffic_bytes = num_elements as f64 * 14.0;
    let mem_time = traffic_bytes / (cfg.mem_bandwidth_gbps * 1e9);
    let compute_cycles =
        num_elements as f64 * 8.0 / (cfg.num_sms as f64 * cfg.issue_slots_per_sm as f64);
    let compute_time = cfg.cycles_to_seconds(compute_cycles);
    mem_time.max(compute_time) + 2.0 * cfg.kernel_launch_overhead_us * 1e-6
}

/// Estimated time of the outlier scatter kernel (read the outlier list, patch the grid).
pub fn outlier_scatter_time(gpu: &dyn Backend, num_outliers: usize) -> f64 {
    let cfg = gpu.config();
    let traffic = num_outliers as f64 * (12.0 + 8.0);
    traffic / (cfg.mem_bandwidth_gbps * 1e9) + cfg.kernel_launch_overhead_us * 1e-6
}

/// Decodes one payload with whichever decoder `kind` names: hybrid payloads route to
/// the `huffdec-hybrid` RLE+Huffman decoder, dense payloads to [`huffdec_core::decode`].
/// This is the single-payload dispatch point every sz decompression path goes through.
///
/// Returns [`DecodeError::PayloadMismatch`] when the payload's stream format disagrees
/// with `kind` (a hybrid decoder pointed at a dense stream, or vice versa).
pub fn decode_payload(
    gpu: &dyn Backend,
    kind: DecoderKind,
    payload: &CompressedPayload,
) -> Result<huffdec_core::phases::DecodeResult, DecodeError> {
    if kind.is_hybrid() {
        match payload {
            CompressedPayload::Hybrid(stream) => huffdec_hybrid::decode_hybrid(gpu, stream),
            _ => Err(DecodeError::PayloadMismatch { decoder: kind }),
        }
    } else {
        decode(gpu, kind, payload)
    }
}

/// Decodes several payloads as one batch, routing each to its decoder: the dense fields
/// run as a single overlapped wave ([`huffdec_core::decode_batch`]) while hybrid fields
/// decode one-after-another (their two-substream pipeline manages its own kernels), with
/// the hybrid time charged identically to the serial and the batched estimate. Results
/// come back in input order; every item is validated up front so a mismatched payload
/// fails the whole batch before any decoding runs.
pub fn decode_payload_batch(
    gpu: &dyn Backend,
    items: &[(DecoderKind, &CompressedPayload)],
) -> Result<
    (
        Vec<huffdec_core::phases::DecodeResult>,
        huffdec_core::BatchStats,
    ),
    DecodeError,
> {
    for &(kind, payload) in items {
        if kind.is_hybrid() && !matches!(payload, CompressedPayload::Hybrid(_)) {
            return Err(DecodeError::PayloadMismatch { decoder: kind });
        }
    }
    let dense: Vec<_> = items
        .iter()
        .filter(|(kind, _)| !kind.is_hybrid())
        .map(|&(kind, payload)| (kind, payload))
        .collect();
    let (dense_results, mut stats) = huffdec_core::decode_batch(gpu, &dense)?;

    let mut dense_iter = dense_results.into_iter();
    let mut results = Vec::with_capacity(items.len());
    for &(kind, payload) in items {
        if let (true, CompressedPayload::Hybrid(stream)) = (kind.is_hybrid(), payload) {
            let result = huffdec_hybrid::decode_hybrid(gpu, stream)?;
            let seconds = result.timings.total_seconds();
            // Hybrid fields do not join the overlapped wave: their cost lands on both
            // sides of the comparison, so the overlap speedup reflects only the dense
            // wave the model actually batches.
            stats.serial_seconds += seconds;
            stats.batched_seconds += seconds;
            stats.kernel_launches += result
                .timings
                .phases()
                .iter()
                .map(|(_, phase)| phase.kernels.len())
                .sum::<usize>();
            results.push(result);
        } else {
            results.push(dense_iter.next().expect("one dense result per dense item"));
        }
    }
    stats.fields = items.len();
    Ok((results, stats))
}

fn decompress_inner(
    gpu: &dyn Backend,
    c: &Compressed,
    include_transfer: bool,
) -> Result<Decompressed, DecodeError> {
    // Huffman decode (simulated kernels, functional output). A hand-assembled
    // `Compressed` whose payload format disagrees with its configured decoder surfaces
    // as a typed error instead of a panic.
    let decode_result = decode_payload(gpu, c.decoder(), &c.payload)?;
    Ok(reconstruct(gpu, c, decode_result, include_transfer))
}

/// Everything downstream of the Huffman decode: reverse dual-quantization, outlier
/// patching, and the analytic kernel/transfer costs. Shared by the single-field and
/// batched decompression paths so both report identical per-field statistics.
fn reconstruct(
    gpu: &dyn Backend,
    c: &Compressed,
    decode_result: huffdec_core::phases::DecodeResult,
    include_transfer: bool,
) -> Decompressed {
    // Reverse dual-quantization on the host (functional), with an analytic kernel cost.
    let q = Quantized {
        codes: decode_result.symbols,
        outliers: c.outliers.clone(),
        alphabet_size: c.alphabet_size(),
        step: c.step,
        dims: c.dims,
    };
    let reconstruct_start = std::time::Instant::now();
    let data = dequantize(&q);
    let reconstruct_elapsed = reconstruct_start.elapsed().as_secs_f64();

    // On the simulated backend both kernels are charged analytically; on a real backend
    // the measured dequantize (which already patches outliers) stands in for both, so
    // the scatter kernel contributes zero extra time.
    let reconstruct_seconds = gpu.charge_seconds(
        reconstruct_kernel_time(gpu, data.len()),
        reconstruct_elapsed,
    );
    let outlier_scatter_seconds =
        gpu.charge_seconds(outlier_scatter_time(gpu, c.outliers.len()), 0.0);
    let h2d_transfer_seconds =
        gpu.transfer_seconds(c.compressed_bytes(), TransferDirection::HostToDevice);

    let mut total_seconds =
        decode_result.timings.total_seconds() + reconstruct_seconds + outlier_scatter_seconds;
    if include_transfer {
        total_seconds += h2d_transfer_seconds;
    }

    Decompressed {
        data,
        stats: DecompressStats {
            huffman: decode_result.timings,
            reconstruct_seconds,
            outlier_scatter_seconds,
            h2d_transfer_seconds,
            total_seconds,
        },
    }
}

/// Decodes just the quantization codes of an archive (the Huffman stage alone, no
/// reverse quantization). This is what code-level consumers — the serving daemon's
/// `codes` requests and `hfz verify --deep` — use: the returned symbols are exactly
/// what [`Compressed::matches_decoded_crc`] digests.
pub fn decode_codes(
    gpu: &dyn Backend,
    c: &Compressed,
) -> Result<huffdec_core::phases::DecodeResult, DecodeError> {
    decode_payload(gpu, c.decoder(), &c.payload)
}

/// Decompresses an archive, assuming the compressed data is already resident in GPU
/// memory (the in-memory-compression scenario of Fig. 4).
///
/// Returns [`DecodeError::PayloadMismatch`] if the payload's stream format does not
/// match the archive's configured decoder.
pub fn decompress(gpu: &dyn Backend, c: &Compressed) -> Result<Decompressed, DecodeError> {
    decompress_inner(gpu, c, false)
}

/// Decompresses an archive including the host-to-device transfer of the compressed data
/// (the scenario of Fig. 5).
///
/// Returns [`DecodeError::PayloadMismatch`] if the payload's stream format does not
/// match the archive's configured decoder.
pub fn decompress_with_transfer(
    gpu: &dyn Backend,
    c: &Compressed,
) -> Result<Decompressed, DecodeError> {
    decompress_inner(gpu, c, true)
}

/// Timing breakdown of a batched multi-field decompression
/// ([`decompress_batch`]): the Huffman wave statistics plus the analytic cost of the
/// per-field reconstruction kernels.
#[derive(Debug, Clone)]
pub struct BatchDecompressStats {
    /// The batched Huffman decode statistics (serial baseline vs. overlapped wave).
    pub huffman: huffdec_core::BatchStats,
    /// Total reconstruction cost across fields (reverse dual-quantization + outlier
    /// scatter), charged identically to both the serial and the batched estimate.
    pub reconstruct_seconds: f64,
    /// End-to-end cost of decompressing the fields one-after-another.
    pub serial_seconds: f64,
    /// End-to-end cost with the Huffman decodes batched as one wave.
    pub batched_seconds: f64,
}

impl BatchDecompressStats {
    /// Speedup of the batched pipeline over serial decompression (≥ 1).
    pub fn overlap_speedup(&self) -> f64 {
        if self.batched_seconds <= 0.0 {
            1.0
        } else {
            self.serial_seconds / self.batched_seconds
        }
    }

    /// Serial decompression throughput in GB/s relative to `original_bytes`.
    pub fn serial_throughput_gbs(&self, original_bytes: u64) -> f64 {
        if self.serial_seconds <= 0.0 {
            0.0
        } else {
            original_bytes as f64 / self.serial_seconds / 1e9
        }
    }

    /// Batched decompression throughput in GB/s relative to `original_bytes`.
    pub fn batched_throughput_gbs(&self, original_bytes: u64) -> f64 {
        if self.batched_seconds <= 0.0 {
            0.0
        } else {
            original_bytes as f64 / self.batched_seconds / 1e9
        }
    }
}

/// Decompresses several fields as one batch: the Huffman decodes run as a single wave
/// across the shared worker pool ([`huffdec_core::decode_batch`]), then each field is
/// reconstructed. Outputs are returned in input order and are bit-identical to
/// [`decompress`] field by field (each [`Decompressed`] carries the same per-field
/// statistics the serial path reports).
pub fn decompress_batch(
    gpu: &dyn Backend,
    archives: &[&Compressed],
) -> Result<(Vec<Decompressed>, BatchDecompressStats), DecodeError> {
    let items: Vec<_> = archives.iter().map(|c| (c.decoder(), &c.payload)).collect();
    let (decoded, huffman) = decode_payload_batch(gpu, &items)?;
    let fields: Vec<Decompressed> = archives
        .iter()
        .zip(decoded)
        .map(|(c, result)| reconstruct(gpu, c, result, false))
        .collect();
    let reconstruct_seconds: f64 = fields
        .iter()
        .map(|d| d.stats.reconstruct_seconds + d.stats.outlier_scatter_seconds)
        .sum();
    let stats = BatchDecompressStats {
        serial_seconds: huffman.serial_seconds + reconstruct_seconds,
        batched_seconds: huffman.batched_seconds + reconstruct_seconds,
        huffman,
        reconstruct_seconds,
    };
    Ok((fields, stats))
}

/// Compresses and decompresses a field, asserting the error bound holds. Returns the
/// archive and the reconstruction. Convenience for tests, examples, and benches.
pub fn roundtrip(
    gpu: &dyn Backend,
    field: &Field,
    config: &SzConfig,
) -> (Compressed, Decompressed) {
    let compressed = compress(field, config);
    let decompressed =
        decompress(gpu, &compressed).expect("compress produces a payload matching its decoder");
    let eb_abs = c_abs_bound(field, config);
    if let Some(idx) = verify_error_bound(&field.data, &decompressed.data, eb_abs) {
        panic!(
            "error bound {} violated at element {}: {} vs {}",
            eb_abs, idx, field.data[idx], decompressed.data[idx]
        );
    }
    (compressed, decompressed)
}

fn c_abs_bound(field: &Field, config: &SzConfig) -> f64 {
    config.error_bound.to_absolute(field.range_span() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{dataset_by_name, generate};
    use gpu_sim::Gpu;

    fn gpu() -> Gpu {
        Gpu::with_host_threads(gpu_sim::GpuConfig::test_tiny(), 4)
    }

    #[test]
    fn roundtrip_respects_error_bound_for_every_decoder() {
        let spec = dataset_by_name("HACC").unwrap();
        let field = generate(&spec, 60_000, 17);
        let g = gpu();
        for decoder in DecoderKind::all() {
            let config = SzConfig::paper_default(decoder);
            let (compressed, decompressed) = roundtrip(&g, &field, &config);
            assert!(
                compressed.overall_compression_ratio() > 1.0,
                "{:?}",
                decoder
            );
            assert!(decompressed.stats.total_seconds > 0.0);
        }
    }

    #[test]
    fn all_decoders_reconstruct_identically() {
        let spec = dataset_by_name("CESM").unwrap();
        let field = generate(&spec, 50_000, 3);
        let g = gpu();
        let reference = {
            let config = SzConfig::paper_default(DecoderKind::CuszBaseline);
            roundtrip(&g, &field, &config).1.data
        };
        for decoder in [
            DecoderKind::OptimizedSelfSync,
            DecoderKind::OptimizedGapArray,
        ] {
            let config = SzConfig::paper_default(decoder);
            let (_, d) = roundtrip(&g, &field, &config);
            assert_eq!(d.data, reference, "{:?} reconstruction differs", decoder);
        }
    }

    #[test]
    fn smaller_error_bound_means_lower_compression_ratio() {
        let spec = dataset_by_name("Nyx").unwrap();
        let field = generate(&spec, 60_000, 5);
        let g = gpu();
        let mut last_cr = f64::INFINITY;
        for &eb in &[1e-2, 1e-3, 1e-4] {
            let config = SzConfig {
                error_bound: ErrorBound::Relative(eb),
                alphabet_size: 1024,
                decoder: DecoderKind::OptimizedGapArray,
            };
            let (compressed, _) = roundtrip(&g, &field, &config);
            let cr = compressed.huffman_compression_ratio();
            assert!(cr < last_cr, "cr {} should shrink as eb tightens", cr);
            last_cr = cr;
        }
    }

    #[test]
    fn transfer_inclusive_decompression_is_slower() {
        let spec = dataset_by_name("RTM").unwrap();
        let field = generate(&spec, 40_000, 9);
        let g = gpu();
        let config = SzConfig::paper_default(DecoderKind::OptimizedGapArray);
        let compressed = compress(&field, &config);
        let without = decompress(&g, &compressed).unwrap();
        let with = decompress_with_transfer(&g, &compressed).unwrap();
        assert!(with.stats.total_seconds > without.stats.total_seconds);
        assert_eq!(with.data, without.data);
        assert!(
            with.stats
                .overall_throughput_gbs(compressed.original_bytes())
                < without
                    .stats
                    .overall_throughput_gbs(compressed.original_bytes())
        );
    }

    #[test]
    fn compression_ratio_accounting_is_consistent() {
        let spec = dataset_by_name("GAMESS").unwrap();
        let field = generate(&spec, 50_000, 7);
        let config = SzConfig::paper_default(DecoderKind::OptimizedSelfSync);
        let compressed = compress(&field, &config);
        assert_eq!(compressed.original_bytes(), field.bytes());
        assert_eq!(compressed.quant_code_bytes(), field.len() as u64 * 2);
        assert!(compressed.compressed_bytes() < compressed.original_bytes());
        // Overall ratio exceeds the Huffman ratio times 2 (f32 -> u16) only when outliers
        // are rare; at least check both are > 1.
        assert!(compressed.huffman_compression_ratio() > 1.0);
        assert!(compressed.overall_compression_ratio() > 1.0);
        // The stored size must account for every section the container writes: header,
        // codebook, stream, outliers, end marker — so it strictly exceeds the payload.
        assert!(compressed.compressed_bytes() > compressed.payload.compressed_bytes());
    }

    #[test]
    fn gpu_compression_matches_host_compression() {
        let spec = dataset_by_name("HACC").unwrap();
        let field = generate(&spec, 50_000, 11);
        let g = gpu();
        for decoder in DecoderKind::all() {
            let config = SzConfig::paper_default(decoder);
            let host = compress(&field, &config);
            let (dev, stats) = compress_on(&g, &field, &config);
            assert_eq!(
                dev.compressed_bytes(),
                host.compressed_bytes(),
                "{:?}",
                decoder
            );
            assert_eq!(dev.outliers, host.outliers);
            assert_eq!(dev.step, host.step);
            assert!(stats.quantize_seconds > 0.0);
            assert!(stats.encode.total_seconds() > 0.0);
            assert!(stats.total_seconds > stats.encode.total_seconds());
            assert!(stats.encode_throughput_gbs(dev.quant_code_bytes()) > 0.0);
            assert!(stats.overall_throughput_gbs(dev.original_bytes()) > 0.0);
            // The GPU-encoded archive decompresses to the same data.
            let a = decompress(&g, &host).unwrap();
            let b = decompress(&g, &dev).unwrap();
            assert_eq!(a.data, b.data);
        }
    }

    #[test]
    fn compress_stamps_a_decoded_stream_digest() {
        let spec = dataset_by_name("HACC").unwrap();
        let field = generate(&spec, 40_000, 13);
        let g = gpu();
        for decoder in DecoderKind::all() {
            let config = SzConfig::paper_default(decoder);
            let compressed = compress(&field, &config);
            assert!(compressed.decoded_crc.is_some(), "{:?}", decoder);
            let decoded = decode_codes(&g, &compressed).unwrap();
            assert_eq!(
                compressed.matches_decoded_crc(&decoded.symbols),
                Some(true),
                "{:?}: decoded codes must match the stamped digest",
                decoder
            );
            // A corrupted symbol stream fails the digest.
            let mut wrong = decoded.symbols;
            wrong[7] ^= 1;
            assert_eq!(compressed.matches_decoded_crc(&wrong), Some(false));
            // The GPU encoder stamps the identical digest (same codes).
            let (dev, _) = compress_on(&g, &field, &config);
            assert_eq!(dev.decoded_crc, compressed.decoded_crc);
            // Digest-less archives (pre-trailer) report None.
            let mut stripped = compressed.clone();
            stripped.decoded_crc = None;
            assert_eq!(stripped.matches_decoded_crc(&wrong), None);
            assert_eq!(
                compressed.compressed_bytes() - stripped.compressed_bytes(),
                28,
                "digest trailer accounts for 28 stored bytes"
            );
        }
    }

    #[test]
    fn batched_decompression_matches_serial_and_is_never_slower() {
        let g = gpu();
        let specs = ["HACC", "CESM", "GAMESS"];
        let decoders = [
            DecoderKind::OptimizedGapArray,
            DecoderKind::OptimizedSelfSync,
            DecoderKind::CuszBaseline,
        ];
        let archives: Vec<Compressed> = specs
            .iter()
            .zip(decoders)
            .enumerate()
            .map(|(i, (name, decoder))| {
                let field = generate(&dataset_by_name(name).unwrap(), 30_000, 40 + i as u64);
                compress(&field, &SzConfig::paper_default(decoder))
            })
            .collect();
        let refs: Vec<&Compressed> = archives.iter().collect();
        let (batched, stats) = decompress_batch(&g, &refs).unwrap();
        assert_eq!(batched.len(), 3);
        let original_bytes: u64 = archives.iter().map(|c| c.original_bytes()).sum();
        for (c, d) in archives.iter().zip(&batched) {
            let serial = decompress(&g, c).unwrap();
            assert_eq!(d.data, serial.data, "batched field diverged from serial");
            assert!((d.stats.total_seconds - serial.stats.total_seconds).abs() < 1e-12);
        }
        assert_eq!(stats.huffman.fields, 3);
        assert!(stats.reconstruct_seconds > 0.0);
        assert!(stats.batched_seconds <= stats.serial_seconds + 1e-15);
        assert!(stats.overlap_speedup() >= 1.0);
        assert!(
            stats.batched_throughput_gbs(original_bytes)
                >= stats.serial_throughput_gbs(original_bytes)
        );
        // A mismatched archive fails the whole batch with a typed error.
        let mut broken = archives[1].clone();
        broken.config.decoder = DecoderKind::CuszBaseline;
        assert!(decompress_batch(&g, &[&archives[0], &broken]).is_err());
    }

    #[test]
    fn hybrid_roundtrip_matches_dense_reconstruction() {
        // Lorenzo residuals of a smooth field are overwhelmingly the center bin, so the
        // hybrid RLE front-end is in its element on ordinary paper datasets.
        let spec = dataset_by_name("CESM").unwrap();
        let field = generate(&spec, 50_000, 21);
        let g = gpu();
        let dense = {
            let config = SzConfig::paper_default(DecoderKind::OptimizedSelfSync);
            roundtrip(&g, &field, &config)
        };
        let config = SzConfig::paper_default(DecoderKind::RleHybrid);
        let (compressed, decompressed) = roundtrip(&g, &field, &config);
        assert_eq!(
            decompressed.data, dense.1.data,
            "hybrid reconstruction differs"
        );
        assert!(compressed.overall_compression_ratio() > 1.0);
        // The decoded-codes digest covers the hybrid path. (The container's
        // wire-accounting tests pin `compressed_bytes` against the stored HFZ2 bytes —
        // the dev-only cycle makes the two `Compressed` types distinct in unit tests.)
        let decoded = decode_codes(&g, &compressed).unwrap();
        assert_eq!(compressed.matches_decoded_crc(&decoded.symbols), Some(true));
    }

    #[test]
    fn hybrid_gpu_compression_matches_host() {
        let spec = dataset_by_name("HACC").unwrap();
        let field = generate(&spec, 40_000, 23);
        let g = gpu();
        let config = SzConfig::paper_default(DecoderKind::RleHybrid);
        let host = compress(&field, &config);
        let (dev, stats) = compress_on(&g, &field, &config);
        assert_eq!(dev.compressed_bytes(), host.compressed_bytes());
        assert_eq!(dev.decoded_crc, host.decoded_crc);
        assert!(stats.quantize_seconds > 0.0);
        assert!(stats.encode.total_seconds() > 0.0);
        let a = decompress(&g, &host).unwrap();
        let b = decompress(&g, &dev).unwrap();
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn mixed_batch_with_hybrid_matches_serial() {
        let g = gpu();
        let decoders = [
            DecoderKind::RleHybrid,
            DecoderKind::OptimizedGapArray,
            DecoderKind::RleHybrid,
            DecoderKind::CuszBaseline,
        ];
        let archives: Vec<Compressed> = decoders
            .iter()
            .enumerate()
            .map(|(i, &decoder)| {
                let field = generate(&dataset_by_name("CESM").unwrap(), 30_000, 60 + i as u64);
                compress(&field, &SzConfig::paper_default(decoder))
            })
            .collect();
        let refs: Vec<&Compressed> = archives.iter().collect();
        let (batched, stats) = decompress_batch(&g, &refs).unwrap();
        assert_eq!(batched.len(), 4);
        assert_eq!(stats.huffman.fields, 4);
        for (c, d) in archives.iter().zip(&batched) {
            let serial = decompress(&g, c).unwrap();
            assert_eq!(d.data, serial.data, "batched field diverged from serial");
        }
        assert!(stats.batched_seconds <= stats.serial_seconds + 1e-15);
        assert!(stats.overlap_speedup() >= 1.0);
        // A hybrid archive relabelled as dense (and vice versa) fails the whole batch.
        let mut broken = archives[0].clone();
        broken.config.decoder = DecoderKind::OptimizedSelfSync;
        assert!(decompress_batch(&g, &[&archives[1], &broken]).is_err());
        let mut broken = archives[1].clone();
        broken.config.decoder = DecoderKind::RleHybrid;
        let err = decompress_batch(&g, &[&archives[0], &broken]).unwrap_err();
        assert_eq!(
            err,
            DecodeError::PayloadMismatch {
                decoder: DecoderKind::RleHybrid
            }
        );
    }

    #[test]
    fn mismatched_payload_is_a_typed_error_not_a_panic() {
        let spec = dataset_by_name("CESM").unwrap();
        let field = generate(&spec, 30_000, 5);
        let g = gpu();
        // A flat self-sync payload relabelled as a chunked-baseline archive.
        let mut compressed = compress(
            &field,
            &SzConfig::paper_default(DecoderKind::OptimizedSelfSync),
        );
        compressed.config.decoder = DecoderKind::CuszBaseline;
        let err = decompress(&g, &compressed).unwrap_err();
        assert_eq!(
            err,
            huffdec_core::DecodeError::PayloadMismatch {
                decoder: DecoderKind::CuszBaseline
            }
        );
        // A gap-array decoder pointed at a stream without a gap array.
        compressed.config.decoder = DecoderKind::OptimizedGapArray;
        assert!(decompress(&g, &compressed).is_err());
    }
}
