//! Reconstruction-quality statistics: error-bound verification and PSNR.

/// Maximum point-wise absolute error between the original and reconstructed data.
pub fn max_abs_error(original: &[f32], reconstructed: &[f32]) -> f64 {
    assert_eq!(original.len(), reconstructed.len());
    original
        .iter()
        .zip(reconstructed.iter())
        .map(|(&a, &b)| (a as f64 - b as f64).abs())
        .fold(0.0, f64::max)
}

/// Verifies the point-wise error bound, returning the first violating index if any.
///
/// A small slack proportional to the value magnitude is allowed on top of the bound to
/// account for the `f32` representation error of the reconstructed values (the bound
/// itself is enforced in exact arithmetic by the quantizer).
pub fn verify_error_bound(original: &[f32], reconstructed: &[f32], bound: f64) -> Option<usize> {
    assert_eq!(original.len(), reconstructed.len());
    original
        .iter()
        .zip(reconstructed.iter())
        .position(|(&a, &b)| {
            let tolerance = bound * (1.0 + 1e-4) + a.abs() as f64 * 1e-6 + 1e-9;
            (a as f64 - b as f64).abs() > tolerance
        })
}

/// Peak signal-to-noise ratio in dB, using the original data's value range as the peak.
/// Returns `f64::INFINITY` for an exact reconstruction.
pub fn psnr(original: &[f32], reconstructed: &[f32]) -> f64 {
    assert_eq!(original.len(), reconstructed.len());
    if original.is_empty() {
        return f64::INFINITY;
    }
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut sq_sum = 0.0f64;
    for (&a, &b) in original.iter().zip(reconstructed.iter()) {
        let av = a as f64;
        min = min.min(av);
        max = max.max(av);
        let d = av - b as f64;
        sq_sum += d * d;
    }
    let mse = sq_sum / original.len() as f64;
    if mse == 0.0 {
        return f64::INFINITY;
    }
    let range = (max - min).max(f64::MIN_POSITIVE);
    20.0 * range.log10() - 10.0 * mse.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_reconstruction() {
        let a = vec![1.0f32, 2.0, 3.0];
        assert_eq!(max_abs_error(&a, &a), 0.0);
        assert_eq!(verify_error_bound(&a, &a, 0.0), None);
        assert!(psnr(&a, &a).is_infinite());
    }

    #[test]
    fn bounded_error_detected() {
        let a = vec![0.0f32, 1.0, 2.0];
        let b = vec![0.05f32, 0.95, 2.2];
        assert!((max_abs_error(&a, &b) - 0.2).abs() < 1e-6);
        assert_eq!(verify_error_bound(&a, &b, 0.25), None);
        assert_eq!(verify_error_bound(&a, &b, 0.1), Some(2));
    }

    #[test]
    fn psnr_decreases_with_larger_error() {
        let a: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.01).sin()).collect();
        let small: Vec<f32> = a.iter().map(|v| v + 0.001).collect();
        let large: Vec<f32> = a.iter().map(|v| v + 0.01).collect();
        assert!(psnr(&a, &small) > psnr(&a, &large));
        assert!(psnr(&a, &large) > 20.0);
    }

    #[test]
    fn empty_input() {
        assert!(psnr(&[], &[]).is_infinite());
        assert_eq!(max_abs_error(&[], &[]), 0.0);
        assert_eq!(verify_error_bound(&[], &[], 1.0), None);
    }
}
