//! Archive round-trip: compress a synthetic field, persist it as an `HFZ1` archive
//! file, read the file back, decompress on the simulated GPU, and verify the error
//! bound — the full on-disk life cycle of one compressed field.
//!
//! Run with `cargo run --release --example archive_roundtrip`.

use std::fs::File;
use std::io::{BufReader, BufWriter};

use huffdec::container::{read_info, ArchiveReader, ArchiveWriter};
use huffdec::core_decoders::DecoderKind;
use huffdec::datasets::{dataset_by_name, generate};
use huffdec::gpu_sim::Gpu;
use huffdec::sz::{compress, decompress, verify_error_bound, SzConfig};

fn main() {
    // 1. A synthetic stand-in for one Nyx cosmology field.
    let spec = dataset_by_name("Nyx").expect("Nyx is a registered dataset");
    let field = generate(&spec, 500_000, 7);
    println!(
        "field: {} ({} elements, {:.1} MiB)",
        field.name,
        field.len(),
        field.bytes() as f64 / 1048576.0
    );

    // 2. Compress at the paper's relative error bound, targeting the optimized
    //    gap-array decoder.
    let config = SzConfig::paper_default(DecoderKind::OptimizedGapArray);
    let compressed = compress(&field, &config);

    // 3. Write the archive to disk.
    let path = std::env::temp_dir().join("huffdec_archive_roundtrip.hfz");
    let file = File::create(&path).expect("create archive file");
    let mut writer = ArchiveWriter::new(BufWriter::new(file));
    let written = writer
        .write_compressed(&compressed)
        .expect("serialize archive");
    writer.into_inner().expect("flush archive");
    println!(
        "archive: {} ({} bytes, {:.2}x overall)",
        path.display(),
        written,
        field.bytes() as f64 / written as f64
    );

    // 4. Inspect the stored layout.
    let file = File::open(&path).expect("open archive");
    let info = read_info(&mut BufReader::new(file)).expect("inspect archive");
    println!("{}", info);

    // 5. Read it back and decompress on the simulated V100.
    let file = File::open(&path).expect("open archive");
    let mut reader = ArchiveReader::new(BufReader::new(file));
    let restored = reader
        .read_archive()
        .expect("read archive")
        .into_field()
        .expect("field archive");
    let gpu = Gpu::v100();
    let decompressed = decompress(&gpu, &restored).expect("archive payload matches its decoder");

    // 6. The reconstruction from disk must honour the error bound against the original.
    let bound = config.error_bound.to_absolute(field.range_span() as f64);
    assert!(
        verify_error_bound(&field.data, &decompressed.data, bound).is_none(),
        "error bound violated after the on-disk round-trip"
    );
    println!(
        "round-trip ok: {} elements within |error| <= {:.3e}; simulated decompression {:.3} ms",
        decompressed.data.len(),
        bound,
        decompressed.stats.total_seconds * 1e3
    );

    let _ = std::fs::remove_file(&path);
}
