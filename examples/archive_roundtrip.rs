//! Archive round-trip: compress a synthetic field, persist it as an `HFZ1` archive
//! file, read the file back, decompress on the simulated GPU, and verify the error
//! bound — the full on-disk life cycle of one compressed field.
//!
//! Run with `cargo run --release --example archive_roundtrip`.

use std::fs::File;
use std::io::BufWriter;

use huffdec::container::ArchiveWriter;
use huffdec::datasets::{dataset_by_name, generate};
use huffdec::sz::verify_error_bound;
use huffdec::{Codec, DecoderKind, ErrorBound};

fn main() {
    // 1. A synthetic stand-in for one Nyx cosmology field.
    let spec = dataset_by_name("Nyx").expect("Nyx is a registered dataset");
    let field = generate(&spec, 500_000, 7);
    println!(
        "field: {} ({} elements, {:.1} MiB)",
        field.name,
        field.len(),
        field.bytes() as f64 / 1048576.0
    );

    // 2. Compress at the paper's relative error bound, targeting the optimized
    //    gap-array decoder, through one codec session.
    let error_bound = ErrorBound::Relative(1e-3);
    let codec = Codec::builder()
        .decoder(DecoderKind::OptimizedGapArray)
        .error_bound(error_bound)
        .build()
        .expect("paper configuration is valid");
    let compressed = codec.compress(&field).expect("field is non-empty").archive;

    // 3. Write the archive to disk.
    let path = std::env::temp_dir().join("huffdec_archive_roundtrip.hfz");
    let file = File::create(&path).expect("create archive file");
    let mut writer = ArchiveWriter::new(BufWriter::new(file));
    let written = writer
        .write_compressed(&compressed)
        .expect("serialize archive");
    writer.into_inner().expect("flush archive");
    println!(
        "archive: {} ({} bytes, {:.2}x overall)",
        path.display(),
        written,
        field.bytes() as f64 / written as f64
    );

    // 4. Open an archive session: the file is parsed and validated exactly once, and
    //    its parsed layout is the same structure `hfz inspect` prints.
    let handle = codec
        .open_archive(path.to_str().expect("utf-8 temp path"))
        .expect("open archive");
    println!("{}", handle.fields()[0].info());

    // 5. Decompress the re-read field through the session.
    let decompressed = codec
        .decompress_field(handle.field(0).expect("one field"))
        .expect("archive payload matches its decoder");

    // 6. The reconstruction from disk must honour the error bound against the original.
    let bound = error_bound.to_absolute(field.range_span() as f64);
    assert!(
        verify_error_bound(&field.data, &decompressed.data, bound).is_none(),
        "error bound violated after the on-disk round-trip"
    );
    println!(
        "round-trip ok: {} elements within |error| <= {:.3e}; simulated decompression {:.3} ms",
        decompressed.data.len(),
        bound,
        decompressed.stats.total_seconds * 1e3
    );

    let _ = std::fs::remove_file(&path);
}
