//! Compare all Huffman decoding methods on one dataset, phase by phase.
//!
//! This is a small interactive version of the paper's Tables II and V: it compresses a
//! synthetic CESM-like field (a highly compressible climate variable, where the original
//! fine-grained decoders struggle) and decodes it with every method, printing the
//! per-phase simulated timing and the resulting throughput.
//!
//! Run with `cargo run --release --example decoder_comparison [dataset-name]`.

use huffdec::datasets::{dataset_by_name, generate};
use huffdec::sz::{quantize, DEFAULT_ALPHABET_SIZE};
use huffdec::{Codec, DecoderKind};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "CESM".to_string());
    let spec = dataset_by_name(&name).unwrap_or_else(|| panic!("unknown dataset '{}'", name));
    let field = generate(&spec, 1_500_000, 7);

    // Quantization codes as cuSZ would produce them at relative error bound 1e-3.
    let eb_abs = 1e-3 * field.range_span() as f64;
    let q = quantize(&field.data, field.dims, 2.0 * eb_abs, DEFAULT_ALPHABET_SIZE);
    let quant_bytes = q.codes.len() as u64 * 2;
    println!(
        "{}: {} quantization codes ({:.1} MiB), outlier ratio {:.4}%",
        spec.name,
        q.codes.len(),
        quant_bytes as f64 / 1048576.0,
        100.0 * q.outlier_ratio()
    );

    for kind in DecoderKind::all() {
        // One session per method: the codec owns the simulated V100 and the stream
        // format the decoder consumes.
        let codec = Codec::builder()
            .decoder(kind)
            .build()
            .expect("paper configuration is valid");
        let (payload, _) = codec.encode_symbols(&q.codes);
        let result = codec
            .decode_payload(&payload)
            .expect("payload matches decoder");
        assert_eq!(result.symbols, q.codes, "{:?} decoded incorrectly", kind);

        println!(
            "\n{:<15} (compression ratio {:.2}x)",
            kind.name(),
            payload.compression_ratio()
        );
        for (phase, time) in result.timings.phases() {
            println!("    {:<18} {:>9.3} ms", phase, time.seconds * 1e3);
        }
        println!(
            "    {:<18} {:>9.3} ms  ({:.1} GB/s simulated)",
            "total",
            result.timings.total_seconds() * 1e3,
            result.timings.throughput_gbs(quant_bytes)
        );
    }
}
