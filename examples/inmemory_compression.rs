//! In-memory compression scenario (GAMESS-style block reuse).
//!
//! The paper motivates fast decompression with in-memory compression: GAMESS computes
//! two-electron integral blocks once, stores them compressed in memory, and decompresses
//! a block every time the simulation consumes it — so decompression throughput directly
//! bounds application performance. This example compresses a set of integral-like blocks
//! once and then "replays" a consumption schedule, comparing the time spent decompressing
//! with the baseline decoder versus the optimized gap-array decoder.
//!
//! Run with `cargo run --release --example inmemory_compression`.

use huffdec::datasets::{dataset_by_name, generate_with_dims, Dims};
use huffdec::{Codec, DecoderKind};

const NUM_BLOCKS: usize = 8;
const BLOCK_ELEMENTS: usize = 250_000;
const CONSUMPTIONS: usize = 24;

fn main() {
    let spec = dataset_by_name("GAMESS").expect("GAMESS is a registered dataset");
    // Two sessions on the same simulated V100: one per decoder under comparison.
    let baseline_codec = Codec::builder()
        .decoder(DecoderKind::CuszBaseline)
        .build()
        .expect("paper configuration is valid");
    let optimized_codec = Codec::builder()
        .decoder(DecoderKind::OptimizedGapArray)
        .build()
        .expect("paper configuration is valid");

    // Compress each integral block once (this happens a single time per block in GAMESS).
    let mut archives = Vec::new();
    let mut original_bytes = 0u64;
    for block_id in 0..NUM_BLOCKS {
        let field = generate_with_dims(&spec, Dims::D1(BLOCK_ELEMENTS), 1000 + block_id as u64);
        original_bytes += field.bytes();
        let baseline = baseline_codec
            .compress_archive(&field)
            .expect("block is non-empty");
        let optimized = optimized_codec
            .compress_archive(&field)
            .expect("block is non-empty");
        archives.push((baseline, optimized));
    }
    let compressed_bytes: u64 = archives.iter().map(|(_, o)| o.compressed_bytes()).sum();
    println!(
        "{} blocks, {:.1} MiB of integrals held in {:.1} MiB of memory ({:.2}x reduction)",
        NUM_BLOCKS,
        original_bytes as f64 / 1048576.0,
        compressed_bytes as f64 / 1048576.0,
        original_bytes as f64 / compressed_bytes as f64
    );

    // Replay a consumption schedule: every consumption decompresses one block in GPU
    // memory (no PCIe transfer — the in-memory scenario of Fig. 4).
    let mut baseline_seconds = 0.0;
    let mut optimized_seconds = 0.0;
    for i in 0..CONSUMPTIONS {
        let (baseline, optimized) = &archives[i % NUM_BLOCKS];
        baseline_seconds += baseline_codec
            .decompress(baseline)
            .unwrap()
            .stats
            .total_seconds;
        optimized_seconds += optimized_codec
            .decompress(optimized)
            .unwrap()
            .stats
            .total_seconds;
    }

    println!(
        "replaying {} block consumptions:\n  baseline cuSZ decoder: {:.2} ms of simulated decompression\n  optimized gap-array:   {:.2} ms of simulated decompression\n  speedup: {:.2}x",
        CONSUMPTIONS,
        baseline_seconds * 1e3,
        optimized_seconds * 1e3,
        baseline_seconds / optimized_seconds
    );
}
