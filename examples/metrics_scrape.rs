//! Observability end to end, in one process: start an `hfzd` server with its HTTP
//! metrics sidecar, generate some traffic, then scrape `GET /metrics` and
//! `GET /healthz` exactly as a Prometheus scraper would and read the interesting
//! series back out of the exposition text.
//!
//! ```console
//! $ cargo run --release --example metrics_scrape
//! ```

use std::io::{Read, Write};
use std::sync::Arc;

use huffdec::container::ArchiveWriter;
use huffdec::datasets::{dataset_by_name, generate};
use huffdec::gpu_sim::GpuConfig;
use huffdec::metrics::{parse_prometheus, sample_value};
use huffdec::serve::client::Connection;
use huffdec::serve::http::MetricsServer;
use huffdec::serve::net::{connect, ListenAddr};
use huffdec::serve::protocol::GetKind;
use huffdec::serve::server::{Server, ServerConfig};
use huffdec::serve::BackendKind;
use huffdec::{Codec, DecoderKind};

/// One HTTP/1.1 GET against the sidecar; returns `(status_line, body)`.
fn http_get(addr: &ListenAddr, path: &str) -> (String, String) {
    let mut conn = connect(addr).expect("sidecar accepts");
    conn.write_all(format!("GET {} HTTP/1.1\r\nHost: example\r\n\r\n", path).as_bytes())
        .unwrap();
    conn.flush().unwrap();
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).unwrap();
    let raw = String::from_utf8(raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").unwrap();
    (head.lines().next().unwrap().to_string(), body.to_string())
}

fn main() {
    // An archive to serve.
    let dir = std::env::temp_dir().join("hfzd-metrics-example");
    std::fs::create_dir_all(&dir).unwrap();
    let field = generate(&dataset_by_name("HACC").unwrap(), 50_000, 7);
    let codec = Codec::builder()
        .decoder(DecoderKind::OptimizedGapArray)
        .gpu_config(GpuConfig::test_tiny())
        .host_threads(2)
        .build()
        .unwrap();
    let compressed = codec.compress_archive(&field).unwrap();
    let path = dir.join("hacc.hfz");
    let file = std::fs::File::create(&path).unwrap();
    let mut writer = ArchiveWriter::new(std::io::BufWriter::new(file));
    writer.write_compressed(&compressed).unwrap();
    writer.into_inner().unwrap();

    // The daemon plus its HTTP sidecar (what `hfzd --metrics tcp:...` wires up).
    let config = ServerConfig {
        cache_bytes: 1 << 20,
        gpu: GpuConfig::test_tiny(),
        backend: BackendKind::from_env(),
        host_threads: 2,
        ..ServerConfig::default()
    };
    let server = Server::bind(&ListenAddr::parse("tcp:127.0.0.1:0").unwrap(), &config).unwrap();
    let addr = server.local_addr();
    let state = server.state();
    let sidecar = MetricsServer::bind(
        &ListenAddr::parse("tcp:127.0.0.1:0").unwrap(),
        Arc::clone(&state),
    )
    .unwrap();
    let metrics_addr = sidecar.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());
    let sidecar_thread = std::thread::spawn(move || sidecar.run().unwrap());
    println!("daemon on {}, metrics on {}", addr, metrics_addr);

    // Traffic: a cold decode, a cache hit, and a ranged partial decode.
    let mut client = Connection::connect(&addr).unwrap();
    client.load("hacc", path.to_str().unwrap()).unwrap();
    client.get("hacc", 0, GetKind::Data, None).unwrap();
    client.get("hacc", 0, GetKind::Data, None).unwrap();
    client
        .get("hacc", 0, GetKind::Codes, Some((10_000, 512)))
        .unwrap();

    // Scrape /healthz, then /metrics, like Prometheus would.
    let (status, body) = http_get(&metrics_addr, "/healthz");
    println!("healthz: {} — {}", status, body.trim_end());

    let (status, exposition) = http_get(&metrics_addr, "/metrics");
    println!(
        "metrics: {} ({} bytes of exposition text)",
        status,
        exposition.len()
    );
    let samples = parse_prometheus(&exposition).expect("valid exposition");
    let gap = [("decoder", "opt. gap-array")];
    for (label, value) in [
        (
            "requests",
            sample_value(&samples, "hfz_requests_total", &[]),
        ),
        (
            "cache hits",
            sample_value(&samples, "hfz_cache_hits_total", &[]),
        ),
        (
            "cache misses",
            sample_value(&samples, "hfz_cache_misses_total", &[]),
        ),
        (
            "gap-array full decodes",
            sample_value(&samples, "hfz_decode_seconds_count", &gap),
        ),
        (
            "gap-array partial decodes",
            sample_value(&samples, "hfz_partial_decode_seconds_count", &gap),
        ),
        (
            "decoded bytes out",
            sample_value(&samples, "hfz_decode_bytes_out_total", &[]),
        ),
    ] {
        println!("  {:<26} {}", label, value.unwrap());
    }
    let decode_sum = sample_value(&samples, "hfz_decode_seconds_sum", &gap).unwrap();
    let decode_count = sample_value(&samples, "hfz_decode_seconds_count", &gap).unwrap();
    println!(
        "  mean simulated decode      {:.3} ms",
        decode_sum / decode_count * 1e3
    );
    assert!(decode_count >= 1.0);

    client.shutdown().unwrap();
    server_thread.join().unwrap();
    sidecar_thread.join().unwrap();
    println!("daemon and sidecar shut down cleanly");
}
