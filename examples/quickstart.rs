//! Quickstart: compress a synthetic scientific field with the cuSZ-style pipeline and
//! decompress it with the paper's optimized gap-array Huffman decoder — all through
//! one `Codec` session, the workspace's public API.
//!
//! Run with `cargo run --release --example quickstart`.

use huffdec::datasets::{dataset_by_name, generate};
use huffdec::sz::verify_error_bound;
use huffdec::{Codec, DecoderKind, ErrorBound};

fn main() {
    // 1. A synthetic stand-in for one HACC field (~2 million particles).
    let spec = dataset_by_name("HACC").expect("HACC is a registered dataset");
    let field = generate(&spec, 2_000_000, 42);
    println!(
        "field: {} ({} elements, {:.1} MiB)",
        field.name,
        field.len(),
        field.bytes() as f64 / 1048576.0
    );

    // 2. One codec session: a simulated V100, the paper's relative error bound of
    //    1e-3, targeting the optimized gap-array decoder.
    let codec = Codec::builder()
        .decoder(DecoderKind::OptimizedGapArray)
        .error_bound(ErrorBound::Relative(1e-3))
        .build()
        .expect("paper configuration is valid");
    let compressed = codec.compress(&field).expect("field is non-empty").archive;
    println!(
        "compressed: {:.2} MiB (overall ratio {:.2}x, Huffman ratio {:.2}x, {} outliers)",
        compressed.compressed_bytes() as f64 / 1048576.0,
        compressed.overall_compression_ratio(),
        compressed.huffman_compression_ratio(),
        compressed.outliers.len(),
    );

    // 3. Decompress through the same session. The Huffman decoding runs as simulated
    //    GPU kernels; the output is bit-exact and the timing breakdown is the paper's
    //    Table II structure.
    let decompressed = codec
        .decompress(&compressed)
        .expect("payload matches decoder");

    let eb_abs = 1e-3 * field.range_span() as f64;
    assert!(
        verify_error_bound(&field.data, &decompressed.data, eb_abs).is_none(),
        "error bound violated"
    );
    println!(
        "error bound 1e-3 (abs {:.3e}) verified on all {} elements",
        eb_abs,
        field.len()
    );

    println!("\nsimulated decompression breakdown:");
    for (name, phase) in decompressed.stats.huffman.phases() {
        println!("  {:<18} {:>10.3} ms", name, phase.seconds * 1e3);
    }
    println!(
        "  {:<18} {:>10.3} ms",
        "lorenzo reconstruct",
        decompressed.stats.reconstruct_seconds * 1e3
    );
    println!(
        "  total {:.3} ms -> {:.1} GB/s of uncompressed data",
        decompressed.stats.total_seconds * 1e3,
        decompressed.stats.overall_throughput_gbs(field.bytes())
    );
}
