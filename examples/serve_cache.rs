//! The serving layer end to end, in one process: start an `hfzd` server on an
//! ephemeral port, load two archives, and watch the decoded-field LRU absorb the hot
//! set — first `GET` pays a simulated-GPU decode, the second is a cache hit, a ranged
//! code request decodes only the overlapping blocks, and an over-budget insertion
//! evicts the least recently used field.
//!
//! ```console
//! $ cargo run --release --example serve_cache
//! ```

use huffdec::container::ArchiveWriter;
use huffdec::datasets::{dataset_by_name, generate};
use huffdec::gpu_sim::GpuConfig;
use huffdec::serve::client::Connection;
use huffdec::serve::net::ListenAddr;
use huffdec::serve::protocol::GetKind;
use huffdec::serve::server::{Server, ServerConfig};
use huffdec::{Codec, DecoderKind};

fn write_archive(dir: &std::path::Path, name: &str, dataset: &str, decoder: DecoderKind) -> String {
    let field = generate(&dataset_by_name(dataset).unwrap(), 50_000, 7);
    let codec = Codec::builder()
        .decoder(decoder)
        .gpu_config(GpuConfig::test_tiny())
        .host_threads(2)
        .build()
        .expect("paper configuration is valid");
    let compressed = codec.compress_archive(&field).expect("field is non-empty");
    let path = dir.join(format!("{}.hfz", name));
    let file = std::fs::File::create(&path).unwrap();
    let mut writer = ArchiveWriter::new(std::io::BufWriter::new(file));
    writer.write_compressed(&compressed).unwrap();
    writer.into_inner().unwrap();
    path.to_str().unwrap().to_string()
}

fn main() {
    let dir = std::env::temp_dir().join("hfzd-example");
    std::fs::create_dir_all(&dir).unwrap();
    let hacc = write_archive(&dir, "hacc", "HACC", DecoderKind::OptimizedGapArray);
    let gamess = write_archive(&dir, "gamess", "GAMESS", DecoderKind::OptimizedSelfSync);

    // One decoded field is 200 KB of f32s; a 250 KB budget holds one field, not two.
    let config = ServerConfig {
        cache_bytes: 250_000,
        gpu: GpuConfig::test_tiny(),
        backend: huffdec_serve::BackendKind::from_env(),
        host_threads: 2,
        ..ServerConfig::default()
    };
    let server = Server::bind(&ListenAddr::parse("tcp:127.0.0.1:0").unwrap(), &config).unwrap();
    let addr = server.local_addr();
    let state = server.state();
    let server_thread = std::thread::spawn(move || server.run().unwrap());
    println!("daemon listening on {}", addr);

    let mut client = Connection::connect(&addr).unwrap();
    client.load("hacc", &hacc).unwrap();
    client.load("gamess", &gamess).unwrap();

    let fetch = |client: &mut Connection, archive: &str, range| {
        let r = client.get(archive, 0, GetKind::Data, range).unwrap();
        println!(
            "GET {}{}: {} elements{}{}",
            archive,
            match range {
                Some((s, l)) => format!(" [{}..{}]", s, s + l),
                None => String::new(),
            },
            r.elements,
            if r.from_cache {
                " (cache hit)"
            } else {
                " (decoded)"
            },
            if r.partial { " (partial)" } else { "" },
        );
    };

    fetch(&mut client, "hacc", None); // cold: decodes
    fetch(&mut client, "hacc", None); // hot: cache hit
    fetch(&mut client, "hacc", Some((10_000, 100))); // hot range: slice of the hit

    // A ranged code request on a cold field decodes only the overlapping blocks.
    let r = client
        .get("gamess", 0, GetKind::Codes, Some((25_000, 512)))
        .unwrap();
    println!(
        "GET gamess codes [25000..25512]: {} elements (partial: {})",
        r.elements, r.partial
    );

    // A full fetch of the second field overflows the budget: the first is evicted.
    fetch(&mut client, "gamess", None);
    fetch(&mut client, "hacc", None); // decodes again: it was evicted

    let cache = state.cache_stats();
    println!(
        "cache: {} hits, {} misses, {} evictions, {} bytes used of {}",
        cache.hits,
        cache.misses,
        cache.evictions,
        state.cache_used_bytes(),
        250_000
    );
    assert!(cache.hits >= 2 && cache.evictions >= 1);

    client.shutdown().unwrap();
    server_thread.join().unwrap();
    println!("daemon shut down cleanly");
}
