//! `hfz` — the archive and serving CLI of the huffdec workspace.
//!
//! A thin shell over the facade: every subcommand builds one [`huffdec::Codec`]
//! session and drives the pipeline through it, and every failure is a
//! [`huffdec::HfzError`] mapped to a stable exit code (2 usage, 3 I/O, 4 corrupt
//! archive, 5 decode, 6 protocol/remote, 7 verification failure).
//!
//! Local archive operations work on `HFZ1`/`HFZ2` files; remote operations talk to a
//! running `hfzd` daemon (`hfz serve` starts one in the foreground):
//!
//! ```text
//! hfz compress   --dataset HACC --elements 200000 --seed 42 --output hacc.hfz
//! hfz compress   --input field.f32 --dims 512,512 --output field.hfz --decoder gap --eb rel:1e-3
//! hfz compress   --input sparse.f32 --dims 1048576 --output sparse.hfz --hybrid --format v2
//! hfz compress   --snapshot --dataset HACC,GAMESS,CESM --elements 200000 --output snap.hfz
//! hfz decompress hacc.hfz --output hacc.f32
//! hfz decompress snap.hfz --field GAMESS --output gamess.f32
//! hfz decompress snap.hfz --all --output-dir out/
//! hfz inspect    hacc.hfz [--json]
//! hfz verify     hacc.hfz [--deep] [--dataset HACC --elements 200000 --seed 42]
//!
//! hfz serve      --listen tcp:127.0.0.1:4806 --cache-bytes 268435456 --load hacc=hacc.hfz
//! hfz get        --addr tcp:127.0.0.1:4806 --archive hacc [--field 0] [--codes]
//!                [--range START:LEN] --output hacc.f32
//! hfz list       --addr tcp:127.0.0.1:4806
//! hfz stats      --addr tcp:127.0.0.1:4806
//! hfz load       --addr tcp:127.0.0.1:4806 --name gamess --path gamess.hfz
//! hfz verify     --addr tcp:127.0.0.1:4806 --archive hacc
//! hfz shutdown   --addr tcp:127.0.0.1:4806
//! ```

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::process::ExitCode;

use huffdec::datasets::{dataset_by_name, generate, Dims};
use huffdec::serve::client::Connection;
use huffdec::serve::daemon::{run_foreground as run_daemon, DaemonOptions};
use huffdec::serve::net::ListenAddr;
use huffdec::serve::protocol::GetKind;
use huffdec::{
    BackendKind, Codec, DecoderKind, EncodeOutcome, ErrorBound, Field, FieldHandle, FormatVersion,
    HfzError,
};

/// `println!` that exits quietly instead of panicking when stdout has been closed
/// (e.g. the output is piped into `head`).
macro_rules! out {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compress") => cmd_compress(&args[1..]),
        Some("decompress") => cmd_decompress(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("get") => cmd_get(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("list") => cmd_list(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("load") => cmd_load(&args[1..]),
        Some("shutdown") => cmd_shutdown(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            eprint!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(HfzError::Usage(format!(
            "unknown subcommand '{}'\n\n{}",
            other, USAGE
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("hfz: {}", error);
            // The stable exit-code mapping documented on `HfzError`.
            ExitCode::from(error.exit_code())
        }
    }
}

const USAGE: &str = "\
hfz — HFZ1/HFZ2 archive and serving tool for error-bounded lossy compression

USAGE:
  hfz compress   (--input FILE --dims A[,B[,C[,D]]] | --dataset NAME --elements N [--seed S])
                 --output FILE [--decoder KIND] [--hybrid] [--format v1|v2]
                 [--eb MODE:VALUE] [--alphabet N] [--auto-hybrid FRAC|off]
  hfz compress   --snapshot --dataset NAME[,NAME...] --elements N [--seed S] --output FILE
                 (one sharded snapshot archive with a manifest; field i uses seed S+i)
  hfz decompress ARCHIVE [--field NAME|INDEX | --all --output-dir DIR] --output FILE
  hfz inspect    ARCHIVE [--json]
  hfz verify     ARCHIVE [--deep] [--digest HEX]
                 [--input FILE --dims ... | --dataset NAME --elements N [--seed S]]
  hfz verify     --addr ADDR --archive NAME       (remote: daemon-side deep verify)

  hfz serve      [--listen ADDR] [--cache-bytes N] [--load NAME=PATH]...
                 [--metrics ADDR]                 (HTTP /metrics + /healthz sidecar)
                 [--addr-file PATH]               (write resolved address to PATH)
  hfz get        --addr ADDR --archive NAME [--field I] [--codes] [--range START:LEN]
                 --output FILE
  hfz batch      --addr ADDR --archive NAME --fields I[,I...] [--codes]
                 --output-prefix PATH            (writes PATH.<index> per field)
  hfz list       --addr ADDR
  hfz stats      --addr ADDR [--prom] [--watch SECS]
  hfz load       --addr ADDR --name NAME --path FILE
  hfz shutdown   --addr ADDR

OPTIONS:
  --decoder KIND   baseline | original-self-sync | self-sync | gap   (default: gap)
                   | hybrid (RLE+Huffman for sparse fields; implies --format v2)
  --hybrid         shorthand for --decoder hybrid
  --format VER     container format: v1 (classic) or v2 (codebook    (default: v1;
                   dictionary + tuning hints; enables auto-hybrid)    hybrid forces v2)
  --auto-hybrid X  with --format v2, fields whose quantized stream   (default: 0.5)
                   is >= X center-bin symbols switch to the hybrid
                   decoder automatically; 'off' disables the switch
  --backend NAME   sim (modeled V100 timings) | cpu (real threads,   (default: sim, or
                   wall-clock timings)                                $HFZ_BACKEND)
  --eb MODE:VALUE  rel:1e-3 or abs:0.05                              (default: rel:1e-3)
  --alphabet N     quantization bins, power of two >= 4              (default: 1024)
  --seed S         synthetic dataset seed                            (default: 42)
  --deep           also decode and check the decoded-stream CRC32 trailer
  --digest HEX     expected decoded-stream CRC32 (overrides the stored trailer)
  --prom           print daemon counters in Prometheus text exposition format
  --watch SECS     re-poll the daemon every SECS seconds, printing hit-ratio and
                   decode-latency trends (Ctrl-C to stop); against a router, adds
                   one per-shard row under each fleet-total line
  --router ADDR    alias for --addr (an hfzr fleet router speaks the same protocol)
  ADDR             tcp:HOST:PORT or unix:PATH

EXIT CODES:
  0 ok | 2 usage | 3 I/O | 4 corrupt archive | 5 decode | 6 protocol | 7 verify failed
";

/// Minimal flag parser: positionals plus `--flag value` pairs (and bare `--flag`
/// switches from `SWITCHES`).
struct Args {
    positionals: Vec<String>,
    flags: Vec<(String, String)>,
}

/// Flags that take no value.
const SWITCHES: &[&str] = &["json", "deep", "codes", "snapshot", "all", "prom", "hybrid"];

impl Args {
    fn parse(args: &[String]) -> Result<Args, HfzError> {
        let mut positionals = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if SWITCHES.contains(&name) {
                    flags.push((name.to_string(), "true".to_string()));
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| HfzError::Usage(format!("flag --{} expects a value", name)))?;
                flags.push((name.to_string(), value.clone()));
            } else {
                positionals.push(arg.clone());
            }
        }
        Ok(Args { positionals, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    fn require(&self, name: &str) -> Result<&str, HfzError> {
        self.get(name)
            .ok_or_else(|| HfzError::Usage(format!("missing required flag --{}", name)))
    }
}

/// Resolves `--backend` (falling back to `HFZ_BACKEND`, then the simulator).
fn parse_backend(args: &Args) -> Result<BackendKind, HfzError> {
    match args.get("backend") {
        None => Ok(BackendKind::from_env()),
        Some(name) => BackendKind::parse(name)
            .ok_or_else(|| HfzError::Usage(format!("unknown backend '{}' (sim|cpu)", name))),
    }
}

fn parse_decoder(name: &str) -> Result<DecoderKind, HfzError> {
    match name {
        "baseline" | "cusz" => Ok(DecoderKind::CuszBaseline),
        "original-self-sync" | "ori-self-sync" => Ok(DecoderKind::OriginalSelfSync),
        "self-sync" | "optimized-self-sync" => Ok(DecoderKind::OptimizedSelfSync),
        "gap" | "gap-array" => Ok(DecoderKind::OptimizedGapArray),
        "hybrid" | "rle-hybrid" => Ok(DecoderKind::RleHybrid),
        other => Err(HfzError::Usage(format!("unknown decoder '{}'", other))),
    }
}

fn parse_error_bound(spec: &str) -> Result<ErrorBound, HfzError> {
    let (mode, value) = spec
        .split_once(':')
        .ok_or_else(|| HfzError::Usage(format!("error bound '{}' is not MODE:VALUE", spec)))?;
    let value: f64 = value
        .parse()
        .map_err(|_| HfzError::Usage(format!("bad error-bound value '{}'", value)))?;
    match mode {
        "rel" | "relative" => Ok(ErrorBound::Relative(value)),
        "abs" | "absolute" => Ok(ErrorBound::Absolute(value)),
        other => Err(HfzError::Usage(format!(
            "unknown error-bound mode '{}'",
            other
        ))),
    }
}

fn parse_dims(spec: &str) -> Result<Dims, HfzError> {
    let extents: Vec<usize> = spec
        .split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| HfzError::Usage(format!("bad dimension '{}'", p)))
        })
        .collect::<Result<_, _>>()?;
    if extents.is_empty() || extents.len() > 4 {
        return Err(HfzError::Usage(
            "expected 1-4 comma-separated dimensions".to_string(),
        ));
    }
    if extents.contains(&0) {
        return Err(HfzError::Usage("dimensions must be non-zero".to_string()));
    }
    Ok(Dims::from_slice(&extents))
}

/// Loads the field named by `--input`/`--dims` or `--dataset`/`--elements`/`--seed`.
fn load_field(args: &Args) -> Result<Field, HfzError> {
    match (args.get("input"), args.get("dataset")) {
        (Some(path), None) => {
            let dims = parse_dims(args.require("dims")?)?;
            let mut bytes = Vec::new();
            File::open(path)
                .and_then(|mut f| f.read_to_end(&mut bytes))
                .map_err(|e| HfzError::io(format!("cannot read {}", path), e))?;
            if bytes.len() != dims.len() * 4 {
                return Err(HfzError::Usage(format!(
                    "{} holds {} bytes but dims {:?} need {}",
                    path,
                    bytes.len(),
                    dims.as_vec(),
                    dims.len() * 4
                )));
            }
            let data: Vec<f32> = bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                .collect();
            if data.iter().any(|v| !v.is_finite()) {
                return Err(HfzError::Usage(format!(
                    "{} contains non-finite values",
                    path
                )));
            }
            Ok(Field::new(path.to_string(), dims, data))
        }
        (None, Some(name)) => {
            let spec = dataset_by_name(name)
                .ok_or_else(|| HfzError::Usage(format!("unknown dataset '{}'", name)))?;
            let elements: usize = args
                .require("elements")?
                .parse()
                .map_err(|_| HfzError::Usage("bad --elements value".to_string()))?;
            let seed: u64 = args
                .get("seed")
                .unwrap_or("42")
                .parse()
                .map_err(|_| HfzError::Usage("bad --seed value".to_string()))?;
            Ok(generate(&spec, elements, seed))
        }
        (Some(_), Some(_)) => Err(HfzError::Usage(
            "--input and --dataset are mutually exclusive".to_string(),
        )),
        (None, None) => Err(HfzError::Usage(
            "provide either --input FILE --dims ... or --dataset NAME".to_string(),
        )),
    }
}

/// Builds the CLI's codec session from the shared compression flags
/// (`--decoder/--eb/--alphabet`); value validation — alphabet size, error-bound
/// range — happens in the builder.
fn build_codec(args: &Args) -> Result<Codec, HfzError> {
    let alphabet_size: usize = args
        .get("alphabet")
        .unwrap_or("1024")
        .parse()
        .map_err(|_| HfzError::Usage("bad --alphabet value".to_string()))?;
    // `--hybrid` forces the RLE+Huffman decoder (and with it format v2); otherwise
    // `--decoder` picks one, and `--format v2` enables the auto-hybrid switch that
    // upgrades sufficiently sparse fields on its own.
    let decoder = if args.has("hybrid") {
        DecoderKind::RleHybrid
    } else {
        parse_decoder(args.get("decoder").unwrap_or("gap"))?
    };
    let format = match args.get("format") {
        None => FormatVersion::V1,
        Some(spec) => FormatVersion::parse(spec)
            .ok_or_else(|| HfzError::Usage(format!("unknown format '{}' (v1|v2)", spec)))?,
    };
    let auto_hybrid = match args.get("auto-hybrid") {
        None => Some(huffdec::AUTO_HYBRID_ZERO_FRACTION),
        Some("off") => None,
        Some(spec) => Some(spec.parse::<f64>().map_err(|_| {
            HfzError::Usage("bad --auto-hybrid value (fraction in 0..=1, or 'off')".to_string())
        })?),
    };
    Codec::builder()
        .decoder(decoder)
        .format(format)
        .auto_hybrid(auto_hybrid)
        .backend(parse_backend(args)?)
        .error_bound(parse_error_bound(args.get("eb").unwrap_or("rel:1e-3"))?)
        .alphabet_size(alphabet_size)
        .host_threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
        .build()
}

/// The decode-side session: paper defaults (the archive itself supplies decode
/// parameters) plus the caller's `--backend` selection.
fn decode_codec(args: &Args) -> Result<Codec, HfzError> {
    Codec::builder().backend(parse_backend(args)?).build()
}

fn connect(args: &Args) -> Result<Connection, HfzError> {
    // `--router` is an alias for `--addr`: an `hfzr` fleet router speaks the same
    // protocol as a single daemon, so every remote subcommand works against either.
    let addr = args
        .get("addr")
        .or_else(|| args.get("router"))
        .ok_or_else(|| HfzError::Usage("missing required flag --addr (or --router)".to_string()))?;
    let addr = ListenAddr::parse(addr)?;
    Connection::connect(&addr)
        .map_err(|e| HfzError::Protocol(format!("cannot connect to {}: {}", addr, e)))
}

fn encode_report(codec: &Codec, outcome: &EncodeOutcome) -> String {
    let phases = outcome
        .stats
        .encode
        .phases()
        .iter()
        .map(|(name, p)| format!("{} {:.3} ms", name, p.seconds * 1e3))
        .collect::<Vec<_>>()
        .join(" | ");
    format!(
        "encode: {:.3} ms {} ({:.1} GB/s on quant codes, {:.1} GB/s overall) [{}]",
        outcome.stats.encode.total_seconds() * 1e3,
        if codec.backend().is_modeled() {
            "simulated"
        } else {
            "measured"
        },
        outcome.encode_throughput_gbs(),
        outcome.overall_throughput_gbs(),
        phases
    )
}

fn cmd_compress(rest: &[String]) -> Result<(), HfzError> {
    let args = Args::parse(rest)?;
    let codec = build_codec(&args)?;
    if args.has("snapshot") {
        return cmd_compress_snapshot(&codec, &args);
    }
    let field = load_field(&args)?;
    let output = args.require("output")?;

    // Encode through the selected backend (the archive bytes are identical on every
    // backend) so the encoder throughput can be reported alongside the archive. An
    // empty field is a usage error from the session itself.
    let outcome = codec.compress(&field)?;

    // Serialize through the session so `--format v2` (and the hybrid auto-upgrade)
    // decides the container layout in one place.
    let bytes = codec.archive_to_bytes(&outcome.archive)?;
    let written = bytes.len() as u64;
    std::fs::write(output, &bytes)
        .map_err(|e| HfzError::io(format!("cannot create {}", output), e))?;

    out!(
        "{}: {} elements ({} bytes) -> {} ({} bytes, {:.2}x)",
        field.name,
        field.len(),
        field.bytes(),
        output,
        written,
        field.bytes() as f64 / written as f64
    );
    out!("{}", encode_report(&codec, &outcome));
    // Post-write report: the cheap structural summary, not a full decode-state open.
    let summary = codec.inspect_archive(output)?;
    out!("{}", summary.infos()[0]);
    Ok(())
}

/// `hfz compress --snapshot`: packs several dataset fields into one sharded snapshot
/// archive with a manifest. Field *i* is generated with `--seed + i`, so any field can
/// be reproduced standalone (`hfz compress --dataset NAME --seed S+i`) and compared
/// byte-for-byte against a manifest-seek extraction.
fn cmd_compress_snapshot(codec: &Codec, args: &Args) -> Result<(), HfzError> {
    let names: Vec<&str> = args.require("dataset")?.split(',').collect();
    if names.len() < 2 {
        return Err(HfzError::Usage(
            "--snapshot expects at least two comma-separated datasets".to_string(),
        ));
    }
    let output = args.require("output")?;
    let elements: usize = args
        .require("elements")?
        .parse()
        .map_err(|_| HfzError::Usage("bad --elements value".to_string()))?;
    let seed: u64 = args
        .get("seed")
        .unwrap_or("42")
        .parse()
        .map_err(|_| HfzError::Usage("bad --seed value".to_string()))?;

    let mut fields: Vec<(String, huffdec::Compressed)> = Vec::with_capacity(names.len());
    for (i, name) in names.iter().enumerate() {
        let spec = dataset_by_name(name)
            .ok_or_else(|| HfzError::Usage(format!("unknown dataset '{}'", name)))?;
        let field = generate(&spec, elements, seed + i as u64);
        let outcome = codec.compress(&field)?;
        out!(
            "field {} '{}': {} elements, {}",
            i,
            spec.name,
            field.len(),
            encode_report(codec, &outcome)
        );
        fields.push((spec.name.to_string(), outcome.archive));
    }
    let refs: Vec<(&str, &huffdec::Compressed)> = fields
        .iter()
        .map(|(name, compressed)| (name.as_str(), compressed))
        .collect();

    let bytes = codec.snapshot_to_bytes(&refs)?;
    let written = bytes.len() as u64;
    std::fs::write(output, &bytes)
        .map_err(|e| HfzError::io(format!("cannot create {}", output), e))?;

    let original: u64 = fields.iter().map(|(_, c)| c.original_bytes()).sum();
    out!(
        "snapshot {}: {} fields, {} -> {} bytes ({:.2}x)",
        output,
        fields.len(),
        original,
        written,
        original as f64 / written as f64
    );
    let summary = codec.inspect_archive(output)?;
    out!(
        "{}",
        summary.manifest().expect("snapshot writes a manifest")
    );
    Ok(())
}

fn write_f32(path: &str, data: &[f32]) -> Result<(), HfzError> {
    let out = File::create(path).map_err(|e| HfzError::io(format!("cannot create {}", path), e))?;
    let mut out = BufWriter::new(out);
    for v in data {
        out.write_all(&v.to_le_bytes())
            .map_err(|e| HfzError::io("write failed", e))?;
    }
    out.flush().map_err(|e| HfzError::io("write failed", e))
}

/// Decompresses one field of an opened archive to `output` and reports the timing.
fn decompress_to(
    codec: &Codec,
    field: &FieldHandle,
    label: &str,
    output: &str,
) -> Result<(), HfzError> {
    let Some(compressed) = field.compressed() else {
        return Err(HfzError::Usage(format!(
            "{} is payload-only; nothing to reconstruct",
            label
        )));
    };
    // A CRC-valid archive whose payload disagrees with its decoder tag surfaces here
    // as a typed decode error.
    let decoded = codec.decompress_field(field)?;
    write_f32(output, &decoded.data)?;
    out!(
        "{} -> {}: {} elements, {} decompression {:.3} ms ({:.1} GB/s overall)",
        label,
        output,
        decoded.data.len(),
        if codec.backend().is_modeled() {
            "simulated"
        } else {
            "measured"
        },
        decoded.stats.total_seconds * 1e3,
        decoded.overall_throughput_gbs(compressed.original_bytes())
    );
    Ok(())
}

fn cmd_decompress(rest: &[String]) -> Result<(), HfzError> {
    let args = Args::parse(rest)?;
    let archive_path = args
        .positionals
        .first()
        .ok_or_else(|| HfzError::Usage("expected an archive path".to_string()))?;
    let codec = decode_codec(&args)?;
    let handle = codec.open_archive(archive_path)?;

    // `--all`: every field into --output-dir, named by the manifest (or by index for
    // manifest-less files).
    if args.has("all") {
        let dir = args.require("output-dir")?;
        std::fs::create_dir_all(dir)
            .map_err(|e| HfzError::io(format!("cannot create {}", dir), e))?;
        for (index, field) in handle.fields().iter().enumerate() {
            let name = field
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("field{}", index));
            let output = format!("{}/{}.f32", dir.trim_end_matches('/'), name);
            decompress_to(
                &codec,
                field,
                &format!("{}[{}]", archive_path, name),
                &output,
            )?;
        }
        return Ok(());
    }

    let output = args.require("output")?;
    // `--field NAME|INDEX`: one field, resolved through the manifest.
    if let Some(selector) = args.get("field") {
        let field = handle.field_by_selector(selector)?;
        return decompress_to(
            &codec,
            field,
            &format!("{}[{}]", archive_path, selector),
            output,
        );
    }

    // Bare decompress: the whole file must be (or start with) a single field. A
    // multi-field snapshot without a field selector is ambiguous — refuse it.
    if handle.manifest().is_some() && handle.len() > 1 {
        return Err(HfzError::Usage(format!(
            "snapshot has {} fields; pass --field NAME or --all --output-dir DIR",
            handle.len()
        )));
    }
    decompress_to(&codec, handle.field(0)?, archive_path, output)
}

fn cmd_inspect(rest: &[String]) -> Result<(), HfzError> {
    let args = Args::parse(rest)?;
    let archive_path = args
        .positionals
        .first()
        .ok_or_else(|| HfzError::Usage("expected an archive path".to_string()))?;
    let json = args.has("json");
    let codec = decode_codec(&args)?;
    // Inspection is metadata-only: headers and section tables, no decode structures.
    let summary = codec.inspect_archive(archive_path)?;
    if json {
        // Machine-readable for hfzd tooling and tests (no screen-scraping): plain files
        // keep the one-object-per-archive array; snapshot files wrap it with their
        // manifest.
        let body = summary
            .infos()
            .iter()
            .map(|info| info.to_json())
            .collect::<Vec<_>>()
            .join(",");
        match summary.manifest() {
            Some(manifest) => out!(
                "{{\"manifest\":{},\"archives\":[{}]}}",
                manifest.to_json(),
                body
            ),
            None => out!("[{}]", body),
        }
    } else {
        // Session context first (the JSON form stays archive-only: tooling parses it).
        out!(
            "backend: {} ({})",
            codec.backend_kind().name(),
            codec.device_name()
        );
        out!();
        if let Some(manifest) = summary.manifest() {
            out!("{}", manifest);
            out!();
        }
        for (i, info) in summary.infos().iter().enumerate() {
            if i > 0 {
                out!();
            }
            out!("{}", info);
        }
    }
    Ok(())
}

fn cmd_verify(rest: &[String]) -> Result<(), HfzError> {
    let args = Args::parse(rest)?;
    if args.has("addr") {
        return cmd_verify_remote(&args);
    }
    let archive_path = args
        .positionals
        .first()
        .ok_or_else(|| HfzError::Usage("expected an archive path".to_string()))?;

    // Opening the session is itself the structural pass: manifest framing/checksum and
    // shard-extent validation, then framing, checksums, and reassembly of every
    // archive in the file. Anything left over after the last end marker is corruption,
    // not slack.
    let codec = decode_codec(&args)?;
    let handle = codec.open_archive(archive_path)?;
    if let Some(manifest) = handle.manifest() {
        out!(
            "manifest:  ok ({} fields, {} shard bytes)",
            manifest.len(),
            manifest.shard_bytes()
        );
    }
    for (i, field) in handle.fields().iter().enumerate() {
        out!(
            "structure: ok (archive {}: {} sections, {} bytes)",
            i + 1,
            field.info().sections.len(),
            field.info().total_bytes
        );
    }
    if handle.len() > 1 && handle.manifest().is_none() {
        out!(
            "note: file concatenates {} archives; verifying the first",
            handle.len()
        );
    }

    let deep = args.has("deep");
    let expected_digest = args
        .get("digest")
        .map(|hex| u32::from_str_radix(hex.trim_start_matches("0x"), 16))
        .transpose()
        .map_err(|_| HfzError::Usage("bad --digest value (expected hex CRC32)".to_string()))?;

    // Multi-field snapshots: every field was already reassembled (cross-checked
    // against its manifest entry) by the open, and — under --deep — each is decoded
    // and checked against its stored digest. A semantically corrupt field anywhere in
    // the snapshot must fail verification, exactly as the daemon's VERIFY does.
    if handle.manifest().map(|m| m.len() > 1).unwrap_or(false) {
        if expected_digest.is_some() {
            return Err(HfzError::Usage(
                "--digest applies to single-field archives; use --deep for snapshots".to_string(),
            ));
        }
        if args.get("input").is_some() || args.get("dataset").is_some() {
            return Err(HfzError::Usage(
                "--input/--dataset bound checks apply to single-field archives".to_string(),
            ));
        }
        for field in handle.fields() {
            let name = field.name().expect("manifest-backed fields carry names");
            out!(
                "contents:  ok (field '{}': {} symbols, decoder {})",
                name,
                field.archive().payload().num_symbols(),
                field.decoder().name()
            );
            if deep {
                let decoded = codec.decode_field_codes(field)?;
                let computed = huffdec::core_decoders::crc32_symbols(&decoded.symbols);
                let stored = field.compressed().and_then(|c| c.decoded_crc);
                match stored {
                    Some(expected) if computed != expected => {
                        return Err(HfzError::Verify(format!(
                            "deep verification failed: field '{}' digests to {:08x}, expected {:08x}",
                            name, computed, expected
                        )));
                    }
                    Some(_) => out!(
                        "deep:      ok (field '{}': decoded CRC32 {:08x} over {} symbols)",
                        name,
                        computed,
                        decoded.symbols.len()
                    ),
                    None => out!(
                        "deep:      field '{}' stores no decoded-stream digest",
                        name
                    ),
                }
            }
        }
        return Ok(());
    }

    // Single field (or the first archive of a manifest-less concatenation).
    let field = handle.field(0)?;
    out!(
        "contents:  ok ({} symbols, decoder {})",
        field.archive().payload().num_symbols(),
        field.decoder().name()
    );

    // Deep pass: decode the symbol stream and check it against the decoded-stream
    // digest (the stored trailer, or a caller-supplied --digest). This catches archives
    // whose sections are individually CRC-valid but decode to the wrong codes.
    if deep || expected_digest.is_some() {
        let decoded = codec.decode_field_codes(field)?;
        let computed = huffdec::core_decoders::crc32_symbols(&decoded.symbols);
        let stored = field.compressed().and_then(|c| c.decoded_crc);
        let expected = expected_digest.or(stored).ok_or_else(|| {
            HfzError::Usage(
                "archive stores no decoded-stream digest; pass --digest HEX to check against one"
                    .to_string(),
            )
        })?;
        if computed != expected {
            return Err(HfzError::Verify(format!(
                "deep verification failed: decoded stream digests to {:08x}, expected {:08x}",
                computed, expected
            )));
        }
        out!(
            "deep:      ok (decoded CRC32 {:08x} over {} symbols)",
            computed,
            decoded.symbols.len()
        );
    }

    let Some(compressed) = field.compressed() else {
        out!("payload-only archive: nothing further to verify");
        return Ok(());
    };

    // Reconstruction pass: decode and check the error bound against the original when
    // one is provided.
    let decompressed = codec.decompress_field(field)?;
    out!(
        "decode:    ok ({} elements reconstructed)",
        decompressed.data.len()
    );

    if args.get("input").is_some() || args.get("dataset").is_some() {
        let original = load_field(&args)?;
        if original.len() != decompressed.data.len() {
            return Err(HfzError::Verify(format!(
                "original has {} elements, archive reconstructs {}",
                original.len(),
                decompressed.data.len()
            )));
        }
        let bound = compressed
            .config
            .error_bound
            .to_absolute(original.range_span() as f64);
        match huffdec::sz::verify_error_bound(&original.data, &decompressed.data, bound) {
            None => out!("bound:     ok (|error| <= {:e} everywhere)", bound),
            Some(idx) => {
                return Err(HfzError::Verify(format!(
                    "error bound {:e} violated at element {}: {} vs {}",
                    bound, idx, original.data[idx], decompressed.data[idx]
                )))
            }
        }
    }
    Ok(())
}

fn cmd_verify_remote(args: &Args) -> Result<(), HfzError> {
    let archive = args.require("archive")?;
    let mut client = connect(args)?;
    let report = client.verify(archive)?;
    out!("{}", report.trim_end());
    if report.contains("DIGEST MISMATCH") {
        return Err(HfzError::Verify(
            "remote deep verification reported digest failures".to_string(),
        ));
    }
    Ok(())
}

fn cmd_serve(rest: &[String]) -> Result<(), HfzError> {
    let options = DaemonOptions::parse(rest).map_err(HfzError::Usage)?;
    run_daemon(&options)
}

fn parse_range(spec: &str) -> Result<(u64, u64), HfzError> {
    let (start, len) = spec
        .split_once(':')
        .ok_or_else(|| HfzError::Usage(format!("range '{}' is not START:LEN", spec)))?;
    let start: u64 = start
        .parse()
        .map_err(|_| HfzError::Usage("bad range start".to_string()))?;
    let len: u64 = len
        .parse()
        .map_err(|_| HfzError::Usage("bad range length".to_string()))?;
    Ok((start, len))
}

fn cmd_get(rest: &[String]) -> Result<(), HfzError> {
    let args = Args::parse(rest)?;
    let archive = args.require("archive")?;
    let output = args.require("output")?;
    let field: u32 = args
        .get("field")
        .unwrap_or("0")
        .parse()
        .map_err(|_| HfzError::Usage("bad --field value".to_string()))?;
    let kind = if args.has("codes") {
        GetKind::Codes
    } else {
        GetKind::Data
    };
    let range = args.get("range").map(parse_range).transpose()?;

    let mut client = connect(&args)?;
    let result = client.get(archive, field, kind, range)?;

    let file =
        File::create(output).map_err(|e| HfzError::io(format!("cannot create {}", output), e))?;
    let mut file = BufWriter::new(file);
    file.write_all(&result.bytes)
        .and_then(|_| file.flush())
        .map_err(|e| HfzError::io("write failed", e))?;

    out!(
        "{}[{}] -> {}: {} {} elements ({} bytes){}{}",
        archive,
        field,
        output,
        result.elements,
        if result.kind == GetKind::Data {
            "f32"
        } else {
            "code"
        },
        result.bytes.len(),
        if result.from_cache { ", cached" } else { "" },
        if result.partial {
            ", partial decode"
        } else {
            ""
        }
    );
    Ok(())
}

/// `hfz batch`: one `GETBATCH` round trip fetching several whole fields; the daemon
/// decodes every cache miss as a single batched wave. Each field lands in
/// `PREFIX.<index>`.
fn cmd_batch(rest: &[String]) -> Result<(), HfzError> {
    let args = Args::parse(rest)?;
    let archive = args.require("archive")?;
    let prefix = args.require("output-prefix")?;
    let fields: Vec<u32> = args
        .require("fields")?
        .split(',')
        .map(|p| {
            p.trim()
                .parse::<u32>()
                .map_err(|_| HfzError::Usage(format!("bad field index '{}'", p)))
        })
        .collect::<Result<_, _>>()?;
    if fields.is_empty() {
        return Err(HfzError::Usage(
            "--fields expects at least one index".to_string(),
        ));
    }
    let kind = if args.has("codes") {
        GetKind::Codes
    } else {
        GetKind::Data
    };

    let mut client = connect(&args)?;
    let items = client.get_batch(archive, kind, &fields)?;
    let mut cached = 0u32;
    for (field, item) in fields.iter().zip(&items) {
        let output = format!("{}.{}", prefix, field);
        let file = File::create(&output)
            .map_err(|e| HfzError::io(format!("cannot create {}", output), e))?;
        let mut file = BufWriter::new(file);
        file.write_all(&item.bytes)
            .and_then(|_| file.flush())
            .map_err(|e| HfzError::io("write failed", e))?;
        cached += item.from_cache as u32;
        out!(
            "{}[{}] -> {}: {} {} elements ({} bytes){}",
            archive,
            field,
            output,
            item.elements,
            if kind == GetKind::Data { "f32" } else { "code" },
            item.bytes.len(),
            if item.from_cache { ", cached" } else { "" }
        );
    }
    out!(
        "batch: {} fields, {} cached, {} decoded as one wave",
        items.len(),
        cached,
        items.len() as u32 - cached
    );
    Ok(())
}

fn cmd_list(rest: &[String]) -> Result<(), HfzError> {
    let args = Args::parse(rest)?;
    let mut client = connect(&args)?;
    out!("{}", client.list()?);
    Ok(())
}

fn cmd_stats(rest: &[String]) -> Result<(), HfzError> {
    let args = Args::parse(rest)?;
    let mut client = connect(&args)?;
    if let Some(secs) = args.get("watch") {
        let secs: u64 =
            secs.parse().ok().filter(|&s| s > 0).ok_or_else(|| {
                HfzError::Usage("bad --watch value (positive seconds)".to_string())
            })?;
        return watch_stats(&mut client, secs);
    }
    if args.has("prom") {
        out!("{}", client.metrics_prom()?.trim_end());
    } else {
        out!("{}", client.stats()?);
    }
    Ok(())
}

/// One tick of `hfz stats --watch`: the counters the trend lines are computed from.
#[derive(Clone, Copy)]
struct WatchSample {
    requests: f64,
    hits: f64,
    misses: f64,
    decodes: f64,
    decode_seconds: f64,
}

/// `hfz stats --watch SECS`: re-polls the daemon's Prometheus document and prints one
/// trend line per tick — lifetime totals plus the delta window since the previous tick
/// (cache hit ratio and mean simulated decode latency). Runs until interrupted or the
/// daemon goes away.
fn watch_stats(client: &mut Connection, secs: u64) -> Result<(), HfzError> {
    let mut prev: Option<WatchSample> = None;
    loop {
        let text = client.metrics_prom()?;
        let samples = huffdec::metrics::parse_prometheus(&text)
            .map_err(|e| HfzError::Protocol(format!("bad /metrics document: {}", e)))?;
        // Labeled families (per-decoder histograms) are summed across their series.
        let total = |name: &str| -> f64 {
            samples
                .iter()
                .filter(|s| s.name == name)
                .map(|s| s.value)
                .sum()
        };
        let now = WatchSample {
            requests: total("hfz_requests_total"),
            hits: total("hfz_cache_hits_total"),
            misses: total("hfz_cache_misses_total"),
            decodes: total("hfz_decode_seconds_count"),
            decode_seconds: total("hfz_decode_seconds_sum"),
        };
        let ratio = |hits: f64, misses: f64| {
            let lookups = hits + misses;
            if lookups > 0.0 {
                format!("{:.2}", hits / lookups)
            } else {
                "-".to_string()
            }
        };
        let mean_ms = |decodes: f64, seconds: f64| {
            if decodes > 0.0 {
                format!("{:.3} ms", seconds / decodes * 1e3)
            } else {
                "-".to_string()
            }
        };
        match prev {
            None => out!(
                "stats: {} requests | hit ratio {} ({} hits, {} misses) | {} decodes, mean simulated {}",
                now.requests,
                ratio(now.hits, now.misses),
                now.hits,
                now.misses,
                now.decodes,
                mean_ms(now.decodes, now.decode_seconds)
            ),
            Some(p) => out!(
                "stats: +{} requests | window hit ratio {} (lifetime {}) | +{} decodes, window mean {} (lifetime {})",
                now.requests - p.requests,
                ratio(now.hits - p.hits, now.misses - p.misses),
                ratio(now.hits, now.misses),
                now.decodes - p.decodes,
                mean_ms(now.decodes - p.decodes, now.decode_seconds - p.decode_seconds),
                mean_ms(now.decodes, now.decode_seconds)
            ),
        }
        // Against an `hfzr` router the merged document labels every shard family with
        // `shard="N"` (and exports `hfzr_shard_up`); one sub-row per shard turns the
        // fleet line above into a fleet-total + per-shard table. Against a single
        // daemon no `shard` labels exist and the loop body never runs.
        let mut shard_ids: Vec<&str> = samples.iter().filter_map(|s| s.label("shard")).collect();
        shard_ids.sort_unstable();
        shard_ids.dedup();
        for id in shard_ids {
            let for_shard = |name: &str| -> f64 {
                samples
                    .iter()
                    .filter(|s| s.name == name && s.label("shard") == Some(id))
                    .map(|s| s.value)
                    .sum()
            };
            let up = samples.iter().any(|s| {
                s.name == "hfzr_shard_up" && s.label("shard") == Some(id) && s.value > 0.0
            });
            let decodes = for_shard("hfz_decode_seconds_count");
            out!(
                "  shard {} [{}]: {} requests | hit ratio {} | {} decodes, mean simulated {}",
                id,
                if up { "up" } else { "down" },
                for_shard("hfz_requests_total"),
                ratio(
                    for_shard("hfz_cache_hits_total"),
                    for_shard("hfz_cache_misses_total")
                ),
                decodes,
                mean_ms(decodes, for_shard("hfz_decode_seconds_sum"))
            );
        }
        prev = Some(now);
        std::thread::sleep(std::time::Duration::from_secs(secs));
    }
}

fn cmd_load(rest: &[String]) -> Result<(), HfzError> {
    let args = Args::parse(rest)?;
    let name = args.require("name")?;
    let path = args.require("path")?;
    let mut client = connect(&args)?;
    let fields = client.load(name, path)?;
    out!("loaded '{}' from {} ({} fields)", name, path, fields);
    Ok(())
}

fn cmd_shutdown(rest: &[String]) -> Result<(), HfzError> {
    let args = Args::parse(rest)?;
    let mut client = connect(&args)?;
    client.shutdown()?;
    out!("daemon is shutting down");
    Ok(())
}
