//! `hfzd` — the block-decode daemon.
//!
//! ```text
//! hfzd --listen tcp:127.0.0.1:4806 --cache-bytes 268435456 --load hacc=/data/hacc.hfz
//! ```
//!
//! Serves `LIST`/`GET`/`STATS`/`VERIFY`/`LOAD`/`SHUTDOWN` until a client sends
//! `SHUTDOWN` (`hfz shutdown --addr ...`). `hfz serve` is the same daemon spelled as a
//! CLI subcommand.

use std::process::ExitCode;

use huffdec::serve::daemon::{run_foreground, DaemonOptions};
use huffdec::HfzError;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--help")
        || args.first().map(String::as_str) == Some("-h")
    {
        eprintln!(
            "hfzd — HFZ1 block-decode daemon\n\n\
             USAGE:\n  hfzd [--listen ADDR] [--cache-bytes N] [--load NAME=PATH]... [--host-threads N] [--metrics ADDR] [--addr-file PATH]\n\n\
             ADDR is tcp:HOST:PORT (port 0 = ephemeral) or unix:PATH; default {}\n\
             --metrics binds an HTTP sidecar serving GET /metrics (Prometheus) and GET /healthz\n\
             --addr-file writes the resolved listen address to PATH once accepting",
            huffdec::serve::daemon::DEFAULT_LISTEN
        );
        return ExitCode::SUCCESS;
    }
    let result = DaemonOptions::parse(&args)
        .map_err(HfzError::Usage)
        .and_then(|options| run_foreground(&options));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("hfzd: {}", error);
            // The same stable exit-code mapping the `hfz` CLI uses.
            ExitCode::from(error.exit_code())
        }
    }
}
