//! `hfzr` — the sharded-fleet fan-out router.
//!
//! ```text
//! hfzr --spawn 3 --hfzd-bin target/release/hfzd --load hacc=/data/hacc.hfz
//! hfzr --shard tcp:127.0.0.1:4806 --shard tcp:10.0.0.2:4806
//! ```
//!
//! Speaks the same protocol as a single `hfzd` (an `hfz --addr` pointed here works
//! unchanged) but shards archives across the fleet: `GET`/`VERIFY` go to the owning
//! shard, `GETBATCH` fans out and merges in order, `STATS`/`METRICS` aggregate, and
//! a dead shard's archives are re-placed onto the survivors with one transparent
//! retry for the in-flight request.

use std::process::ExitCode;

use huffdec::router::{run_foreground, RouterOptions};
use huffdec::HfzError;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--help")
        || args.first().map(String::as_str) == Some("-h")
    {
        eprintln!(
            "hfzr — sharded hfzd fleet router\n\n\
             USAGE:\n  hfzr [--listen ADDR] (--shard ADDR)... [--spawn N] [--hfzd-bin PATH]\n       \
             [--cache-bytes N] [--backend sim|cpu] [--load NAME=PATH]... [--metrics ADDR]\n       [--addr-file PATH]\n\n\
             ADDR is tcp:HOST:PORT (port 0 = ephemeral) or unix:PATH; default {}\n\
             --shard attaches to a running hfzd; --spawn forks N hfzd children on ephemeral\n\
             ports (--cache-bytes/--backend are forwarded to them)\n\
             --metrics binds an HTTP sidecar serving the fleet GET /metrics and GET /healthz\n\
             --addr-file writes the resolved listen address to PATH once accepting",
            huffdec::router::DEFAULT_LISTEN
        );
        return ExitCode::SUCCESS;
    }
    let result = RouterOptions::parse(&args)
        .map_err(HfzError::Usage)
        .and_then(|options| run_foreground(&options));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("hfzr: {}", error);
            // The same stable exit-code mapping hfz and hfzd use.
            ExitCode::from(error.exit_code())
        }
    }
}
