//! Workspace facade crate. Re-exports the public API of all member crates so that
//! examples and integration tests can use a single dependency.
pub use datasets;
pub use gpu_sim;
pub use huffdec_container as container;
pub use huffdec_core as core_decoders;
pub use huffdec_serve as serve;
pub use huffman;
pub use sz;
