//! # huffdec — the public API of the workspace
//!
//! The supported surface is the **session API** re-exported at the crate root: build a
//! [`Codec`] once (it owns the simulated device, the worker-thread budget, and the
//! compression configuration), then drive the whole pipeline through it — compress,
//! decompress, batched waves, archive sessions with cached decode state, and one
//! unified error type ([`HfzError`]) with a stable CLI exit-code mapping.
//!
//! ```
//! use huffdec::{Codec, DecoderKind, ErrorBound};
//! use huffdec::datasets::{dataset_by_name, generate};
//!
//! let field = generate(&dataset_by_name("HACC").unwrap(), 20_000, 42);
//!
//! let codec = Codec::builder()
//!     .gpu_config(huffdec::gpu_sim::GpuConfig::test_tiny())
//!     .decoder(DecoderKind::OptimizedGapArray)
//!     .error_bound(ErrorBound::Relative(1e-3))
//!     .host_threads(2)
//!     .build()
//!     .unwrap();
//!
//! let encoded = codec.compress(&field).unwrap();
//! let decoded = codec.decompress(&encoded.archive).unwrap();
//! assert_eq!(decoded.data.len(), field.len());
//! ```
//!
//! The member crates remain available below as **low-level building blocks** — the
//! decoders, the gpu simulator, the container codecs, and the free functions the
//! session API is built from. They are public and stable for kernel-level work
//! (benchmark ablations, custom pipelines), but new consumers should start from
//! [`Codec`]; everything in-tree (the `hfz`/`hfzd` binaries, the serving daemon, the
//! bench harness, the examples) goes through it.

// ----- the session API (the supported surface) -----

pub use huffdec_codec::{
    ArchiveHandle, ArchiveSummary, Backend, BackendKind, BatchDecodeOutcome, Codec, CodecBuilder,
    CpuBackend, DecodeOutcome, EncodeOutcome, FieldHandle, FormatVersion, HfzError, Metrics,
    MetricsSnapshot, SimBackend, AUTO_HYBRID_ZERO_FRACTION, BACKEND_ENV,
};

// Companion types the session API speaks in.
pub use datasets::Field;
pub use huffdec_core::DecoderKind;
pub use sz::{Compressed, ErrorBound, SzConfig};

// ----- low-level building blocks (member crates, re-exported wholesale) -----

pub use datasets;
pub use gpu_sim;
pub use huffdec_container as container;
pub use huffdec_core as core_decoders;
pub use huffdec_metrics as metrics;
pub use huffdec_router as router;
pub use huffdec_serve as serve;
pub use huffman;
pub use sz;
