//! Facade-level integration of the `HFZ1` container with the full pipeline: archives
//! written through the streaming writer reconstruct bit-exactly through the streaming
//! reader, including several archives concatenated on one stream.

use huffdec::container::{ArchiveReader, ArchiveWriter};
use huffdec::core_decoders::DecoderKind;
use huffdec::datasets::{all_datasets, generate};
use huffdec::gpu_sim::{Gpu, GpuConfig};
use huffdec::sz::{compress, decompress, SzConfig};

fn gpu() -> Gpu {
    Gpu::with_host_threads(GpuConfig::test_tiny(), 4)
}

#[test]
fn streamed_archives_concatenate_and_reconstruct() {
    // Write one archive per dataset back-to-back on a single stream, then read them all
    // back in order and check each reconstruction against its in-memory path.
    let gpu = gpu();
    let mut stream = Vec::new();
    let mut writer = ArchiveWriter::new(&mut stream);
    let mut originals = Vec::new();
    for (i, spec) in all_datasets().into_iter().enumerate() {
        let field = generate(&spec, 12_000, 500 + i as u64);
        let decoder = DecoderKind::all()[i % DecoderKind::all().len()];
        let compressed = compress(&field, &SzConfig::paper_default(decoder));
        writer.write_compressed(&compressed).expect("write archive");
        originals.push(compressed);
    }
    writer.into_inner().expect("flush");

    let mut reader = ArchiveReader::new(stream.as_slice());
    for original in &originals {
        let restored = reader
            .read_archive()
            .expect("read archive")
            .into_field()
            .expect("field archive");
        assert_eq!(restored.decoder(), original.decoder());
        assert_eq!(restored.dims, original.dims);
        assert_eq!(
            decompress(&gpu, &restored).unwrap().data,
            decompress(&gpu, original).unwrap().data,
            "archive reconstruction diverged for {:?}",
            original.decoder()
        );
    }
}

#[test]
fn archive_size_accounting_matches_stream_position() {
    let field = generate(&all_datasets()[0], 20_000, 3);
    let compressed = compress(
        &field,
        &SzConfig::paper_default(DecoderKind::OptimizedSelfSync),
    );
    let mut stream = Vec::new();
    let mut writer = ArchiveWriter::new(&mut stream);
    let written = writer.write_compressed(&compressed).expect("write");
    writer.into_inner().expect("flush");
    assert_eq!(written, stream.len() as u64);
}
