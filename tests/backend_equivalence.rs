//! Backend equivalence: the simulated device and the multi-threaded CPU backend must
//! be *functionally indistinguishable* — identical archive bytes on encode, and
//! bit-identical decoded output on every decode path (full, ranged, batched), for
//! every decoder kind over every paper dataset. Only the reported timings may differ
//! (modeled vs. measured).

use huffdec::container::to_bytes;
use huffdec::datasets::{all_datasets, generate};
use huffdec::gpu_sim::GpuConfig;
use huffdec::{BackendKind, Codec, DecoderKind};

fn codec(backend: BackendKind, decoder: DecoderKind) -> Codec {
    Codec::builder()
        .gpu_config(GpuConfig::test_tiny())
        .host_threads(3)
        .backend(backend)
        .decoder(decoder)
        .build()
        .expect("valid configuration")
}

/// f32 equality that is actually bit equality (`-0.0` vs `0.0` or NaN payloads would
/// slip through `==`).
fn assert_bits_eq(a: &[f32], b: &[f32], context: &str) {
    assert_eq!(a.len(), b.len(), "{}: length diverged", context);
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{}: element {} diverged ({} vs {})",
            context,
            i,
            x,
            y
        );
    }
}

#[test]
fn encode_and_full_decode_match_across_backends() {
    // Every decoder kind over every paper dataset: the archives must be byte-identical
    // and each backend must decode the *other* backend's archive to identical bits.
    for spec in all_datasets() {
        let field = generate(&spec, 9_000, 42);
        for decoder in DecoderKind::all() {
            let context = format!("{} / {:?}", spec.name, decoder);
            let sim = codec(BackendKind::Sim, decoder);
            let cpu = codec(BackendKind::Cpu, decoder);

            let sim_archive = sim.compress_archive(&field).expect("sim encode");
            let cpu_archive = cpu.compress_archive(&field).expect("cpu encode");
            assert_eq!(
                to_bytes(&sim_archive).unwrap(),
                to_bytes(&cpu_archive).unwrap(),
                "{}: encoded archives diverged",
                context
            );

            // Cross-decode: each backend decodes the other's archive.
            let on_sim = sim.decompress(&cpu_archive).expect("sim decode");
            let on_cpu = cpu.decompress(&sim_archive).expect("cpu decode");
            assert_bits_eq(&on_sim.data, &on_cpu.data, &context);

            // The Huffman stage alone (codes, before reverse quantization) too.
            let codes_sim = sim.decode_codes(&sim_archive).expect("sim codes");
            let codes_cpu = cpu.decode_codes(&sim_archive).expect("cpu codes");
            assert_eq!(
                codes_sim.symbols, codes_cpu.symbols,
                "{}: decoded codes diverged",
                context
            );
        }
    }
}

#[test]
fn ranged_decodes_match_across_backends() {
    // Ranged decodes exercise the index build plus block-limited launches; the two
    // backends must select and decode identical blocks.
    let field = generate(&all_datasets()[0], 15_000, 7);
    for decoder in DecoderKind::all() {
        let sim = codec(BackendKind::Sim, decoder);
        let cpu = codec(BackendKind::Cpu, decoder);
        let archive = sim.compress_archive(&field).expect("encode");
        let bytes = huffdec::container::snapshot_to_bytes(&[("f", &archive)]).unwrap();

        let sim_handle = sim.open_snapshot_bytes(&bytes).expect("sim open");
        let cpu_handle = cpu.open_snapshot_bytes(&bytes).expect("cpu open");
        let sim_field = sim_handle.field_by_name("f").unwrap();
        let cpu_field = cpu_handle.field_by_name("f").unwrap();

        for (start, len) in [(0u64, 256u64), (4_000, 512), (14_800, 200)] {
            let a = sim
                .decompress_range(sim_field, start, len)
                .expect("sim range");
            let b = cpu
                .decompress_range(cpu_field, start, len)
                .expect("cpu range");
            assert_eq!(
                a.symbols, b.symbols,
                "{:?}: ranged symbols diverged at [{}, +{})",
                decoder, start, len
            );
            assert_eq!(
                (a.decoded_blocks, a.total_blocks),
                (b.decoded_blocks, b.total_blocks),
                "{:?}: block selection diverged",
                decoder
            );
        }
    }
}

#[test]
fn batched_decodes_match_across_backends_and_serial() {
    // One overlapped wave over mixed datasets: both backends must reproduce the
    // serial outputs bit for bit, and both must report a sane wave speedup.
    let archives: Vec<_> = all_datasets()
        .iter()
        .take(3)
        .enumerate()
        .map(|(i, spec)| {
            let field = generate(spec, 8_000, 100 + i as u64);
            codec(BackendKind::Sim, DecoderKind::OptimizedGapArray)
                .compress_archive(&field)
                .expect("encode")
        })
        .collect();
    let refs: Vec<&_> = archives.iter().collect();

    let sim = codec(BackendKind::Sim, DecoderKind::OptimizedGapArray);
    let cpu = codec(BackendKind::Cpu, DecoderKind::OptimizedGapArray);
    let sim_batch = sim.decompress_batch(&refs).expect("sim batch");
    let cpu_batch = cpu.decompress_batch(&refs).expect("cpu batch");
    assert!(sim_batch.stats.overlap_speedup() >= 1.0);
    assert!(cpu_batch.stats.overlap_speedup() >= 1.0);

    for (i, (a, b)) in sim_batch.fields.iter().zip(&cpu_batch.fields).enumerate() {
        let context = format!("batch field {}", i);
        assert_bits_eq(&a.data, &b.data, &context);
        let serial = sim.decompress(refs[i]).expect("serial decode");
        assert_bits_eq(&a.data, &serial.data, &format!("{} vs serial", context));
    }
}

#[test]
fn cpu_backend_timings_are_measured_not_modeled() {
    // The functional outputs match, but the CPU backend's stats must be real
    // wall-clock: no transfer modeling, and a positive elapsed decode time.
    let field = generate(&all_datasets()[0], 9_000, 11);
    let cpu = codec(BackendKind::Cpu, DecoderKind::OptimizedGapArray);
    assert!(!cpu.backend().is_modeled());
    assert!(!cpu.backend().models_transfer());

    let archive = cpu.compress_archive(&field).expect("encode");
    let decoded = cpu.decompress(&archive).expect("decode");
    assert!(decoded.stats.total_seconds > 0.0);
    assert!(cpu.device_name().contains("host CPU"));
}
