//! End-to-end `hfz` CLI behaviour: degenerate inputs must surface as clean errors
//! (the stable `HfzError` exit codes + a message), never as panics; the compress path
//! must report the simulated encoder throughput; and the serving subcommands must
//! round-trip through a real `hfz serve` daemon process.

use std::io::BufRead;
use std::process::{Command, Stdio};

fn hfz() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hfz"))
}

#[test]
fn zero_length_input_file_is_a_graceful_error() {
    let dir = std::env::temp_dir().join("hfz-cli-test-empty");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("empty.f32");
    std::fs::write(&input, b"").unwrap();
    let output = dir.join("empty.hfz");

    let result = hfz()
        .args([
            "compress",
            "--input",
            input.to_str().unwrap(),
            "--dims",
            "16",
            "--output",
            output.to_str().unwrap(),
        ])
        .output()
        .expect("hfz runs");
    assert!(!result.status.success());
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(
        stderr.contains("hfz:"),
        "expected a clean CLI error, got: {}",
        stderr
    );
    assert!(
        !stderr.contains("panicked"),
        "hfz must not panic on an empty input file: {}",
        stderr
    );
    assert!(!output.exists(), "no archive should be written on error");
}

#[test]
fn compress_reports_encoder_throughput() {
    let dir = std::env::temp_dir().join("hfz-cli-test-encode");
    std::fs::create_dir_all(&dir).unwrap();
    let output = dir.join("hacc.hfz");

    let result = hfz()
        .args([
            "compress",
            "--dataset",
            "HACC",
            "--elements",
            "30000",
            "--output",
            output.to_str().unwrap(),
        ])
        .output()
        .expect("hfz runs");
    assert!(
        result.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&result.stderr)
    );
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(stdout.contains("encode:"), "stdout: {}", stdout);
    assert!(stdout.contains("GB/s"), "stdout: {}", stdout);
    for phase in ["histogram", "tree+codebook", "offset prefix-sum", "scatter"] {
        assert!(
            stdout.contains(phase),
            "missing phase '{}': {}",
            phase,
            stdout
        );
    }
}

#[test]
fn decompress_of_truncated_archive_is_a_graceful_error() {
    let dir = std::env::temp_dir().join("hfz-cli-test-trunc");
    std::fs::create_dir_all(&dir).unwrap();
    let archive = dir.join("t.hfz");
    let out = dir.join("t.f32");

    // Produce a valid archive, then truncate it mid-section.
    let ok = hfz()
        .args([
            "compress",
            "--dataset",
            "CESM",
            "--elements",
            "20000",
            "--output",
            archive.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    assert!(ok.success());
    let bytes = std::fs::read(&archive).unwrap();
    std::fs::write(&archive, &bytes[..bytes.len() / 2]).unwrap();

    let result = hfz()
        .args([
            "decompress",
            archive.to_str().unwrap(),
            "--output",
            out.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!result.status.success());
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(!stderr.contains("panicked"), "stderr: {}", stderr);
    assert!(stderr.contains("hfz:"), "stderr: {}", stderr);
}

fn compress_dataset(
    dir: &std::path::Path,
    name: &str,
    dataset: &str,
    decoder: &str,
) -> std::path::PathBuf {
    let path = dir.join(format!("{}.hfz", name));
    let status = hfz()
        .args([
            "compress",
            "--dataset",
            dataset,
            "--elements",
            "20000",
            "--decoder",
            decoder,
            "--output",
            path.to_str().unwrap(),
        ])
        .status()
        .expect("hfz runs");
    assert!(status.success());
    path
}

#[test]
fn verify_deep_checks_the_decoded_stream_digest() {
    let dir = std::env::temp_dir().join("hfz-cli-test-deep");
    std::fs::create_dir_all(&dir).unwrap();
    let archive = compress_dataset(&dir, "deep", "HACC", "gap");

    // Deep verification passes on a fresh archive and reports the digest.
    let result = hfz()
        .args(["verify", archive.to_str().unwrap(), "--deep"])
        .output()
        .unwrap();
    assert!(
        result.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&result.stderr)
    );
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(stdout.contains("deep:"), "stdout: {}", stdout);
    assert!(stdout.contains("decoded CRC32"), "stdout: {}", stdout);

    // A wrong caller-supplied digest fails cleanly.
    let result = hfz()
        .args(["verify", archive.to_str().unwrap(), "--digest", "deadbeef"])
        .output()
        .unwrap();
    assert!(!result.status.success());
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(
        stderr.contains("deep verification failed"),
        "stderr: {}",
        stderr
    );
    assert!(!stderr.contains("panicked"), "stderr: {}", stderr);
}

#[test]
fn inspect_json_is_machine_readable() {
    let dir = std::env::temp_dir().join("hfz-cli-test-json");
    std::fs::create_dir_all(&dir).unwrap();
    let archive = compress_dataset(&dir, "json", "CESM", "self-sync");

    let result = hfz()
        .args(["inspect", archive.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert!(result.status.success());
    let stdout = String::from_utf8_lossy(&result.stdout);
    let doc = stdout.trim();
    // One JSON array of archive objects with the fields tooling needs — and none of
    // the human report's prose.
    assert!(doc.starts_with('[') && doc.ends_with(']'), "{}", doc);
    for key in [
        "\"total_bytes\":",
        "\"decoder\":\"opt. self-sync\"",
        "\"decoder_tag\":2",
        "\"num_symbols\":",
        "\"decoded_crc\":",
        "\"field\":{\"dims\":[",
        "\"sections\":[{\"kind\":\"codebook\"",
    ] {
        assert!(doc.contains(key), "missing {} in {}", key, doc);
    }
    assert!(
        !doc.contains("compression:"),
        "human report leaked: {}",
        doc
    );
}

#[test]
fn serve_and_get_roundtrip_through_the_daemon() {
    let dir = std::env::temp_dir().join("hfz-cli-test-serve");
    std::fs::create_dir_all(&dir).unwrap();
    let hacc = compress_dataset(&dir, "hacc", "HACC", "gap");
    let gamess = compress_dataset(&dir, "gamess", "GAMESS", "baseline");

    // Ephemeral port: the daemon prints the resolved address on stdout.
    let mut daemon = hfz()
        .args([
            "serve",
            "--listen",
            "tcp:127.0.0.1:0",
            "--cache-bytes",
            "1000000",
            "--load",
            &format!("hacc={}", hacc.display()),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("daemon starts");
    let stdout = daemon.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("daemon prints its banner")
        .expect("banner reads");
    let addr = banner
        .split_whitespace()
        .find(|w| w.starts_with("tcp:"))
        .expect("banner names the address")
        .to_string();

    let run = |args: &[&str]| {
        let result = hfz().args(args).output().expect("hfz runs");
        assert!(
            result.status.success(),
            "hfz {:?} failed: {}",
            args,
            String::from_utf8_lossy(&result.stderr)
        );
        String::from_utf8_lossy(&result.stdout).into_owned()
    };

    run(&[
        "load",
        "--addr",
        &addr,
        "--name",
        "gamess",
        "--path",
        gamess.to_str().unwrap(),
    ]);
    let list = run(&["list", "--addr", &addr]);
    assert!(list.contains("\"hacc\"") && list.contains("\"gamess\""));

    // Served bytes are identical to a direct decompress.
    let served = dir.join("served.f32");
    let direct = dir.join("direct.f32");
    let get_out = run(&[
        "get",
        "--addr",
        &addr,
        "--archive",
        "hacc",
        "--output",
        served.to_str().unwrap(),
    ]);
    assert!(get_out.contains("f32 elements"), "{}", get_out);
    run(&[
        "decompress",
        hacc.to_str().unwrap(),
        "--output",
        direct.to_str().unwrap(),
    ]);
    assert_eq!(
        std::fs::read(&served).unwrap(),
        std::fs::read(&direct).unwrap(),
        "served bytes must equal the direct decode"
    );

    // Second fetch is a cache hit; a ranged code fetch is a partial decode.
    let again = run(&[
        "get",
        "--addr",
        &addr,
        "--archive",
        "hacc",
        "--output",
        served.to_str().unwrap(),
    ]);
    assert!(again.contains("cached"), "{}", again);
    let range_out = dir.join("range.u16");
    let ranged = run(&[
        "get",
        "--addr",
        &addr,
        "--archive",
        "gamess",
        "--codes",
        "--range",
        "500:128",
        "--output",
        range_out.to_str().unwrap(),
    ]);
    assert!(ranged.contains("partial decode"), "{}", ranged);
    assert_eq!(std::fs::metadata(&range_out).unwrap().len(), 256);

    // Remote deep verify and stats, then a clean shutdown.
    let report = run(&["verify", "--addr", &addr, "--archive", "hacc"]);
    assert!(report.contains("0 digest failures"), "{}", report);
    let stats = run(&["stats", "--addr", &addr]);
    assert!(stats.contains("\"hits\":"), "{}", stats);
    run(&["shutdown", "--addr", &addr]);
    let status = daemon.wait().expect("daemon exits");
    assert!(status.success(), "daemon must exit cleanly after SHUTDOWN");
}

#[test]
fn snapshot_compress_extract_roundtrips_byte_identically() {
    let dir = std::env::temp_dir().join("hfz-cli-test-snapshot");
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("snap.hfz");

    // Pack a 3-field snapshot; field i is generated with seed 7+i, so the GAMESS field
    // (index 1) is reproducible standalone with seed 8.
    let status = hfz()
        .args([
            "compress",
            "--snapshot",
            "--dataset",
            "HACC,GAMESS,CESM",
            "--elements",
            "20000",
            "--seed",
            "7",
            "--output",
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("hfz runs");
    assert!(
        status.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&status.stderr)
    );
    let stdout = String::from_utf8_lossy(&status.stdout);
    assert!(stdout.contains("snapshot manifest: 3 fields"), "{}", stdout);

    // inspect --json wraps the archive list with the manifest.
    let result = hfz()
        .args(["inspect", snap.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert!(result.status.success());
    let doc = String::from_utf8_lossy(&result.stdout);
    let doc = doc.trim();
    assert!(doc.starts_with("{\"manifest\":"), "{}", doc);
    assert!(doc.contains("\"name\":\"GAMESS\""), "{}", doc);
    assert!(doc.contains("\"archives\":["), "{}", doc);

    // Extract by name (manifest seek) and compare against the standalone compress of
    // the same field.
    let from_snap = dir.join("snap-gamess.f32");
    let result = hfz()
        .args([
            "decompress",
            snap.to_str().unwrap(),
            "--field",
            "GAMESS",
            "--output",
            from_snap.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        result.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&result.stderr)
    );
    let solo = dir.join("solo.hfz");
    let solo_out = dir.join("solo.f32");
    assert!(hfz()
        .args([
            "compress",
            "--dataset",
            "GAMESS",
            "--elements",
            "20000",
            "--seed",
            "8",
            "--output",
            solo.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    assert!(hfz()
        .args([
            "decompress",
            solo.to_str().unwrap(),
            "--output",
            solo_out.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    assert_eq!(
        std::fs::read(&from_snap).unwrap(),
        std::fs::read(&solo_out).unwrap(),
        "manifest-seek extraction must be byte-identical to the standalone decompress"
    );

    // A bare decompress of a multi-field snapshot is ambiguous: typed error, exit 1.
    let result = hfz()
        .args([
            "decompress",
            snap.to_str().unwrap(),
            "--output",
            dir.join("x.f32").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!result.status.success());
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(stderr.contains("--field"), "stderr: {}", stderr);
    assert!(!stderr.contains("panicked"), "stderr: {}", stderr);
}

/// Writes a sparse bounded random walk (95% flat steps) as a little-endian f32 file
/// and returns its element count.
fn write_sparse_walk(path: &std::path::Path, n: usize, seed: u64) -> usize {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut value = 0.0f32;
    let mut bytes = Vec::with_capacity(n * 4);
    for _ in 0..n {
        if rng() % 100 >= 95 {
            value += (rng() % 401) as f32 - 200.0;
        }
        bytes.extend_from_slice(&value.to_le_bytes());
    }
    std::fs::write(path, &bytes).unwrap();
    n
}

#[test]
fn hybrid_compress_roundtrips_and_beats_dense_on_sparse_fields() {
    let dir = std::env::temp_dir().join("hfz-cli-test-hybrid");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("sparse.f32");
    let elements = write_sparse_walk(&input, 40_000, 17);

    // The same sparse field through the hybrid and the best dense pipeline. An
    // absolute bound keeps the walk's increments inside the quantization alphabet.
    let hybrid = dir.join("sparse-hybrid.hfz");
    let dense = dir.join("sparse-dense.hfz");
    for (path, extra) in [
        (&hybrid, &["--hybrid", "--format", "v2"][..]),
        (&dense, &[][..]),
    ] {
        let result = hfz()
            .args([
                "compress",
                "--input",
                input.to_str().unwrap(),
                "--dims",
                &elements.to_string(),
                "--eb",
                "abs:0.5",
                "--output",
                path.to_str().unwrap(),
            ])
            .args(extra)
            .output()
            .expect("hfz runs");
        assert!(
            result.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&result.stderr)
        );
    }
    let hybrid_bytes = std::fs::metadata(&hybrid).unwrap().len();
    let dense_bytes = std::fs::metadata(&dense).unwrap().len();
    assert!(
        hybrid_bytes < dense_bytes,
        "at 95% zeros the hybrid archive must be smaller: {} vs {}",
        hybrid_bytes,
        dense_bytes
    );

    // inspect --json names the v2 format, the hybrid decoder, and its sections.
    let result = hfz()
        .args(["inspect", hybrid.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert!(result.status.success());
    let doc = String::from_utf8_lossy(&result.stdout);
    for key in [
        "\"format_version\":2",
        "\"decoder\":\"rle+huff hybrid\"",
        "\"sections\":[{\"kind\":\"hybrid-stream\"",
        "\"dict_id\":null",
    ] {
        assert!(doc.contains(key), "missing {} in {}", key, doc);
    }

    // Deep verification decodes the hybrid stream and checks the stored digest.
    let result = hfz()
        .args(["verify", hybrid.to_str().unwrap(), "--deep"])
        .output()
        .unwrap();
    assert!(
        result.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&result.stderr)
    );
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(stdout.contains("decoded CRC32"), "stdout: {}", stdout);

    // Both pipelines quantize identically, so the reconstructions are byte-identical.
    let from_hybrid = dir.join("hybrid.f32");
    let from_dense = dir.join("dense.f32");
    for (archive, out) in [(&hybrid, &from_hybrid), (&dense, &from_dense)] {
        assert!(hfz()
            .args([
                "decompress",
                archive.to_str().unwrap(),
                "--output",
                out.to_str().unwrap(),
            ])
            .status()
            .unwrap()
            .success());
    }
    assert_eq!(
        std::fs::read(&from_hybrid).unwrap(),
        std::fs::read(&from_dense).unwrap(),
        "hybrid and dense reconstructions must agree bit-for-bit"
    );

    // `--format v2` with auto-hybrid picks the hybrid stream for this field on its
    // own; `--auto-hybrid off` keeps it dense.
    let auto = dir.join("auto.hfz");
    assert!(hfz()
        .args([
            "compress",
            "--input",
            input.to_str().unwrap(),
            "--dims",
            &elements.to_string(),
            "--eb",
            "abs:0.5",
            "--format",
            "v2",
            "--output",
            auto.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    let result = hfz()
        .args(["inspect", auto.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    let doc = String::from_utf8_lossy(&result.stdout);
    assert!(
        doc.contains("\"decoder\":\"rle+huff hybrid\""),
        "auto-hybrid must upgrade a 95%-sparse field: {}",
        doc
    );
    let manual = dir.join("manual.hfz");
    assert!(hfz()
        .args([
            "compress",
            "--input",
            input.to_str().unwrap(),
            "--dims",
            &elements.to_string(),
            "--eb",
            "abs:0.5",
            "--format",
            "v2",
            "--auto-hybrid",
            "off",
            "--output",
            manual.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    let result = hfz()
        .args(["inspect", manual.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    let doc = String::from_utf8_lossy(&result.stdout);
    assert!(
        doc.contains("\"decoder\":\"opt. gap-array\""),
        "--auto-hybrid off must keep the dense decoder: {}",
        doc
    );
}

#[test]
fn unknown_field_and_malformed_archive_are_typed_errors_with_nonzero_exit() {
    let dir = std::env::temp_dir().join("hfz-cli-test-field-errors");
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("snap.hfz");
    assert!(hfz()
        .args([
            "compress",
            "--snapshot",
            "--dataset",
            "HACC,CESM",
            "--elements",
            "15000",
            "--output",
            snap.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());

    // Unknown field name: typed message naming the field, the corrupt-archive exit
    // code (4), no Debug panic.
    let result = hfz()
        .args([
            "decompress",
            snap.to_str().unwrap(),
            "--field",
            "NOPE",
            "--output",
            dir.join("x.f32").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(result.status.code(), Some(4));
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(
        stderr.contains("hfz:") && stderr.contains("no field 'NOPE'"),
        "stderr: {}",
        stderr
    );
    assert!(!stderr.contains("panicked"), "stderr: {}", stderr);

    // Out-of-range field index: same contract.
    let result = hfz()
        .args([
            "decompress",
            snap.to_str().unwrap(),
            "--field",
            "9",
            "--output",
            dir.join("x.f32").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(result.status.code(), Some(4));
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(stderr.contains("hfz:"), "stderr: {}", stderr);
    assert!(!stderr.contains("panicked"), "stderr: {}", stderr);

    // A corrupted manifest (bit flip in the prologue) fails every snapshot-aware
    // subcommand with a clean checksum error, not a panic or a Debug dump.
    let mut bytes = std::fs::read(&snap).unwrap();
    bytes[20] ^= 0x40;
    let bad = dir.join("bad.hfz");
    std::fs::write(&bad, &bytes).unwrap();
    for subcommand in ["inspect", "verify"] {
        let result = hfz()
            .args([subcommand, bad.to_str().unwrap()])
            .output()
            .unwrap();
        assert_eq!(result.status.code(), Some(4), "{} must fail", subcommand);
        let stderr = String::from_utf8_lossy(&result.stderr);
        assert!(
            stderr.contains("hfz:") && stderr.contains("checksum mismatch"),
            "{} stderr: {}",
            subcommand,
            stderr
        );
        assert!(!stderr.contains("panicked"), "stderr: {}", stderr);
    }
}
