//! Property-based integration tests: every decoder must reproduce arbitrary symbol
//! streams exactly, and the core Huffman invariants must hold for arbitrary frequency
//! distributions.
//!
//! The properties are exercised with a seeded-PRNG case driver instead of an external
//! property-testing crate (this environment cannot fetch dependencies); each property
//! runs over a few dozen randomized cases and failures report the offending case seed.

use huffdec::core_decoders::{roundtrip, DecoderKind};
use huffdec::datasets::Rng;
use huffdec::gpu_sim::{Gpu, GpuConfig};
use huffdec::huffman::{
    assign_canonical, code_lengths, decode_flat, encode_flat, is_prefix_free, kraft_sum, Codebook,
    FrequencyTable,
};

const CASES: u64 = 24;

fn gpu() -> Gpu {
    Gpu::with_host_threads(GpuConfig::test_tiny(), 2)
}

/// Runs `body` over `CASES` independently seeded PRNGs, labelling failures by case seed.
fn for_each_case(property: &str, mut body: impl FnMut(&mut Rng)) {
    for case in 0..CASES {
        let seed = 0xC0FFEE ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = Rng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = result {
            eprintln!(
                "property '{}' failed on case {} (seed {:#x})",
                property, case, seed
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// A symbol stream with quantization-code-like skew: mostly a central value with
/// geometric excursions.
fn symbol_stream(rng: &mut Rng, max_len: usize) -> Vec<u16> {
    let len = 1 + rng.gen_index(max_len - 1);
    let spread = rng.gen_index(10) as u32;
    (0..len)
        .map(|_| {
            let r = (rng.next_u64() >> 33) as u32;
            let mag = (r.trailing_zeros().min(spread)) as i32;
            let sign = if (r >> 30) & 1 == 1 { 1 } else { -1 };
            (512 + sign * mag).clamp(0, 1023) as u16
        })
        .collect()
}

#[test]
fn huffman_code_lengths_satisfy_kraft() {
    for_each_case("kraft", |rng| {
        let n = 2 + rng.gen_index(254);
        let counts: Vec<u64> = (0..n).map(|_| rng.gen_index(10_000) as u64).collect();
        if counts.iter().all(|&c| c == 0) {
            return; // vacuous case
        }
        let freq = FrequencyTable::from_counts(counts);
        let lengths = code_lengths(&freq).expect("code length construction");
        assert!(kraft_sum(&lengths) <= 1.0 + 1e-9);
        let codes = assign_canonical(&lengths);
        assert!(is_prefix_free(&codes));
    });
}

#[test]
fn flat_encoding_roundtrips() {
    for_each_case("flat roundtrip", |rng| {
        let symbols = symbol_stream(rng, 4096);
        let cb = Codebook::from_symbols(&symbols, 1024);
        let enc = encode_flat(&cb, &symbols);
        assert_eq!(decode_flat(&cb, &enc).unwrap(), symbols);
    });
}

#[test]
fn every_gpu_decoder_matches_the_input() {
    let g = gpu();
    for_each_case("gpu decoders", |rng| {
        let symbols = symbol_stream(rng, 20_000);
        for kind in DecoderKind::all() {
            let result = roundtrip(&g, kind, &symbols, 1024);
            assert_eq!(result.symbols, symbols, "decoder {:?}", kind);
            assert!(result.timings.total_seconds() > 0.0);
        }
    });
}

#[test]
fn quantization_respects_arbitrary_bounds() {
    for_each_case("quantization bound", |rng| {
        let len = 16 + rng.gen_index(1984);
        let values: Vec<f32> = (0..len)
            .map(|_| rng.gen_range_f64(-1000.0, 1000.0) as f32)
            .collect();
        let eb_exp = -(2 + rng.gen_index(3) as i32); // -2..=-4, the paper's sweep range
        let eb = 10f64.powi(eb_exp) * 2000.0; // absolute bound relative to the value span
        let dims = huffdec::datasets::Dims::D1(values.len());
        let q = huffdec::sz::quantize(&values, dims, 2.0 * eb, 1024);
        let rec = huffdec::sz::dequantize(&q);
        assert!(huffdec::sz::verify_error_bound(&values, &rec, eb).is_none());
    });
}
