//! Property-based integration tests: every decoder must reproduce arbitrary symbol
//! streams exactly, and the core Huffman invariants must hold for arbitrary frequency
//! distributions.

use huffdec::core_decoders::{roundtrip, DecoderKind};
use huffdec::gpu_sim::{Gpu, GpuConfig};
use huffdec::huffman::{
    assign_canonical, code_lengths, decode_flat, encode_flat, is_prefix_free, kraft_sum, Codebook,
    FrequencyTable,
};
use proptest::prelude::*;

fn gpu() -> Gpu {
    Gpu::with_host_threads(GpuConfig::test_tiny(), 2)
}

/// A strategy producing symbol streams with quantization-code-like skew: mostly a central
/// value with geometric excursions, plus occasional uniform noise.
fn symbol_stream(max_len: usize) -> impl Strategy<Value = Vec<u16>> {
    (1usize..max_len, any::<u64>(), 0u32..10).prop_map(|(len, seed, spread)| {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let r = (state >> 33) as u32;
                let mag = (r.trailing_zeros().min(spread)) as i32;
                let sign = if (r >> 30) & 1 == 1 { 1 } else { -1 };
                (512 + sign * mag).clamp(0, 1023) as u16
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn huffman_code_lengths_satisfy_kraft(counts in proptest::collection::vec(0u64..10_000, 2..256)) {
        prop_assume!(counts.iter().filter(|&&c| c > 0).count() >= 1);
        let freq = FrequencyTable::from_counts(counts);
        let lengths = code_lengths(&freq).expect("code length construction");
        prop_assert!(kraft_sum(&lengths) <= 1.0 + 1e-9);
        let codes = assign_canonical(&lengths);
        prop_assert!(is_prefix_free(&codes));
    }

    #[test]
    fn flat_encoding_roundtrips(symbols in symbol_stream(4096)) {
        let cb = Codebook::from_symbols(&symbols, 1024);
        let enc = encode_flat(&cb, &symbols);
        prop_assert_eq!(decode_flat(&cb, &enc).unwrap(), symbols);
    }

    #[test]
    fn every_gpu_decoder_matches_the_input(symbols in symbol_stream(20_000)) {
        let g = gpu();
        for kind in DecoderKind::all() {
            let result = roundtrip(&g, kind, &symbols, 1024);
            prop_assert_eq!(&result.symbols, &symbols, "decoder {:?}", kind);
            prop_assert!(result.timings.total_seconds() > 0.0);
        }
    }

    #[test]
    fn quantization_respects_arbitrary_bounds(
        values in proptest::collection::vec(-1000.0f32..1000.0, 16..2000),
        eb_exp in -4i32..-1,
    ) {
        let eb = 10f64.powi(eb_exp) * 2000.0; // absolute bound relative to the value span
        let dims = huffdec::datasets::Dims::D1(values.len());
        let q = huffdec::sz::quantize(&values, dims, 2.0 * eb, 1024);
        let rec = huffdec::sz::dequantize(&q);
        prop_assert!(huffdec::sz::verify_error_bound(&values, &rec, eb).is_none());
    }
}
