//! Encoder equivalence suite: the simulated-GPU parallel encode pipeline
//! (`huffdec_core::compress_on`) must be bit-identical to the single-threaded host
//! encoder (`compress_for`) — same units, same metadata, same gap arrays, same codebook —
//! for all three stream formats on every paper dataset, plus the degenerate inputs.

use huffdec::core_decoders::{compress_for, compress_on, decode, CompressedPayload, DecoderKind};
use huffdec::datasets::{dataset_by_name, generate};
use huffdec::gpu_sim::{Gpu, GpuConfig};
use huffdec::sz::{quantize, DEFAULT_ALPHABET_SIZE};

const PAPER_DATASETS: [&str; 5] = ["HACC", "CESM", "Nyx", "RTM", "GAMESS"];

fn gpu() -> Gpu {
    Gpu::with_host_threads(GpuConfig::test_tiny(), 4)
}

fn assert_identical(kind: DecoderKind, parallel: &CompressedPayload, serial: &CompressedPayload) {
    match (parallel, serial) {
        (
            CompressedPayload::Chunked {
                encoded: a,
                codebook: ca,
            },
            CompressedPayload::Chunked {
                encoded: b,
                codebook: cb,
            },
        ) => {
            assert_eq!(a.units, b.units, "{:?}: chunked units differ", kind);
            assert_eq!(a.chunks, b.chunks, "{:?}: chunk metadata differs", kind);
            assert_eq!(a.chunk_symbols, b.chunk_symbols);
            assert_eq!(a.num_symbols, b.num_symbols);
            assert_eq!(
                ca.codewords(),
                cb.codewords(),
                "{:?}: codebooks differ",
                kind
            );
        }
        (CompressedPayload::Flat(a), CompressedPayload::Flat(b)) => {
            assert_eq!(a.units, b.units, "{:?}: flat units differ", kind);
            assert_eq!(a.bit_len, b.bit_len, "{:?}: bit lengths differ", kind);
            assert_eq!(a.num_symbols, b.num_symbols);
            assert_eq!(a.geometry, b.geometry);
            assert_eq!(a.codebook.codewords(), b.codebook.codewords());
            match (&a.gap_array, &b.gap_array) {
                (None, None) => {}
                (Some(ga), Some(gb)) => {
                    assert_eq!(ga.gaps, gb.gaps, "{:?}: gap arrays differ", kind);
                    assert_eq!(ga.subseq_bits, gb.subseq_bits);
                }
                _ => panic!("{:?}: gap array presence differs", kind),
            }
        }
        _ => panic!("{:?}: payload formats differ", kind),
    }
    // The field-by-field asserts above exist for readable failure diagnostics; this is
    // the authoritative bit-level check, so the helper can never drift weaker than the
    // `CompressedPayload` equality the encoder guarantees.
    assert_eq!(
        parallel, serial,
        "{:?}: payloads are not bit-identical",
        kind
    );
}

#[test]
fn parallel_encode_is_bit_identical_on_every_paper_dataset() {
    let g = gpu();
    let mut seed = 0x7AB1E6u64;
    for name in PAPER_DATASETS {
        let spec = dataset_by_name(name).expect("paper dataset");
        seed += 1;
        let field = generate(&spec, 40_000, seed);
        // Quantize exactly as the pipeline does at the paper's error bound.
        let eb_abs = 1e-3 * field.range_span() as f64;
        let q = quantize(&field.data, field.dims, 2.0 * eb_abs, DEFAULT_ALPHABET_SIZE);
        for kind in DecoderKind::all() {
            let serial = compress_for(kind, &q.codes, DEFAULT_ALPHABET_SIZE);
            let (parallel, phases) = compress_on(&g, kind, &q.codes, DEFAULT_ALPHABET_SIZE);
            assert_identical(kind, &parallel, &serial);
            assert!(
                phases.total_seconds() > 0.0,
                "{} / {:?}: no simulated encode time",
                name,
                kind
            );
            // The parallel-encoded payload decodes back to the quantization codes.
            let decoded = decode(&g, kind, &parallel).expect("matching payload");
            assert_eq!(decoded.symbols, q.codes, "{} / {:?}", name, kind);
        }
    }
}

#[test]
fn empty_symbol_stream_is_equivalent() {
    let g = gpu();
    for kind in DecoderKind::all() {
        let serial = compress_for(kind, &[], DEFAULT_ALPHABET_SIZE);
        let (parallel, phases) = compress_on(&g, kind, &[], DEFAULT_ALPHABET_SIZE);
        assert_identical(kind, &parallel, &serial);
        assert_eq!(phases.total_seconds(), 0.0);
        assert_eq!(parallel.num_symbols(), 0);
    }
}

#[test]
fn single_distinct_symbol_field_is_equivalent() {
    let g = gpu();
    let symbols = vec![512u16; 20_000];
    for kind in DecoderKind::all() {
        let serial = compress_for(kind, &symbols, DEFAULT_ALPHABET_SIZE);
        let (parallel, _) = compress_on(&g, kind, &symbols, DEFAULT_ALPHABET_SIZE);
        assert_identical(kind, &parallel, &serial);
        let decoded = decode(&g, kind, &parallel).expect("matching payload");
        assert_eq!(decoded.symbols, symbols, "{:?}", kind);
    }
}

#[test]
fn encode_phase_breakdown_names_match_the_paper_pipeline() {
    let g = gpu();
    let symbols: Vec<u16> = (0..30_000u32)
        .map(|i| (512 + ((i.wrapping_mul(2654435761) >> 23) % 16) as i32 - 8) as u16)
        .collect();
    let (_, phases) = compress_on(&g, DecoderKind::OptimizedGapArray, &symbols, 1024);
    let names: Vec<&str> = phases.phases().iter().map(|(n, _)| *n).collect();
    assert_eq!(
        names,
        vec!["histogram", "tree+codebook", "offset prefix-sum", "scatter"]
    );
}
