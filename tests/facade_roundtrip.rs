//! Facade equivalence suite: the `huffdec::Codec` session API must be a pure seam —
//! archives produced through it are byte-identical to the old free-function path
//! (`sz::compress` / `sz::compress_on`), decompression reconstructs the same data, and
//! the archive sessions (`open_archive` / `open_snapshot` / `decompress_range`) agree
//! with the streaming readers, for every evaluated decoder kind on every paper
//! dataset.

use huffdec::datasets::{dataset_by_name, generate};
use huffdec::gpu_sim::{Gpu, GpuConfig};
use huffdec::sz::{verify_error_bound, SzConfig};
use huffdec::{Codec, Compressed, DecoderKind, HfzError};

const PAPER_DATASETS: [&str; 5] = ["HACC", "CESM", "Nyx", "RTM", "GAMESS"];
const DECODERS: [DecoderKind; 3] = [
    DecoderKind::CuszBaseline,
    DecoderKind::OptimizedSelfSync,
    DecoderKind::OptimizedGapArray,
];

fn codec_for(decoder: DecoderKind) -> Codec {
    Codec::builder()
        .gpu_config(GpuConfig::test_tiny())
        .host_threads(4)
        .decoder(decoder)
        .build()
        .expect("test codec configuration is valid")
}

#[test]
fn facade_archives_are_byte_identical_to_the_free_function_path() {
    let mut seed = 0xFACADEu64;
    for name in PAPER_DATASETS {
        let spec = dataset_by_name(name).expect("paper dataset");
        seed += 1;
        let field = generate(&spec, 20_000, seed);
        for decoder in DECODERS {
            let codec = codec_for(decoder);

            // Old path: free functions + config structs, exactly as consumers were
            // wired before the session API existed.
            let legacy_config = SzConfig::paper_default(decoder);
            let legacy = huffdec::sz::compress(&field, &legacy_config);
            let legacy_bytes = huffdec::container::to_bytes(&legacy).expect("serialize");

            // New path, both encoders: the GPU pipeline and the untimed host path.
            let session = codec.compress(&field).expect("non-empty field");
            let session_bytes = huffdec::container::to_bytes(&session.archive).expect("serialize");
            assert_eq!(
                session_bytes, legacy_bytes,
                "{} / {:?}: session archive differs from the free-function archive",
                name, decoder
            );
            let host = codec.compress_archive(&field).expect("non-empty field");
            assert_eq!(
                huffdec::container::to_bytes(&host).expect("serialize"),
                legacy_bytes,
                "{} / {:?}: host-encoded session archive differs",
                name,
                decoder
            );

            // Reconstruction matches the old path bit for bit and honours the bound.
            let gpu = Gpu::with_host_threads(GpuConfig::test_tiny(), 4);
            let old = huffdec::sz::decompress(&gpu, &legacy).expect("payload matches");
            let new = codec.decompress(&session.archive).expect("payload matches");
            assert_eq!(new.data, old.data, "{} / {:?}", name, decoder);
            let bound = 1e-3 * field.range_span() as f64;
            assert!(
                verify_error_bound(&field.data, &new.data, bound).is_none(),
                "{} / {:?}: error bound violated",
                name,
                decoder
            );
        }
    }
}

#[test]
fn archive_sessions_agree_with_the_streaming_readers() {
    let dir = std::env::temp_dir().join("huffdec-facade-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    for decoder in DECODERS {
        let codec = codec_for(decoder);

        // One snapshot over all five paper datasets, written by the container writer.
        let fields: Vec<(String, Compressed)> = PAPER_DATASETS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let spec = dataset_by_name(name).expect("paper dataset");
                let field = generate(&spec, 15_000, 900 + i as u64);
                (
                    name.to_string(),
                    codec.compress_archive(&field).expect("non-empty field"),
                )
            })
            .collect();
        let refs: Vec<(&str, &Compressed)> = fields.iter().map(|(n, c)| (n.as_str(), c)).collect();
        let bytes = huffdec::container::snapshot_to_bytes(&refs).expect("snapshot serializes");
        let path = dir.join(format!("snap-{}.hfz", decoder.tag()));
        std::fs::write(&path, &bytes).unwrap();

        // The session sees exactly what the low-level snapshot reader sees.
        let handle = codec
            .open_snapshot(path.to_str().unwrap())
            .expect("snapshot opens");
        assert_eq!(handle.len(), PAPER_DATASETS.len());
        assert_eq!(handle.total_bytes(), bytes.len() as u64);
        let snapshot = huffdec::container::Snapshot::parse(&bytes).expect("snapshot parses");
        for (index, (name, original)) in fields.iter().enumerate() {
            let field = handle.field_by_name(name).expect("manifest lookup");
            assert_eq!(field.name(), Some(name.as_str()));
            let low_level = snapshot
                .read_field(index)
                .expect("seek")
                .into_field()
                .expect("field archive");
            assert_eq!(
                field.compressed().expect("field archive").decoded_crc,
                low_level.decoded_crc
            );
            // Decoding through the session equals decoding the seek-read archive.
            let via_session = codec.decompress_field(field).expect("decodes");
            let gpu = Gpu::with_host_threads(GpuConfig::test_tiny(), 4);
            let via_reader = huffdec::sz::decompress(&gpu, &low_level).expect("decodes");
            assert_eq!(via_session.data, via_reader.data, "{} field diverged", name);
            assert_eq!(
                via_session.data,
                codec.decompress(original).expect("decodes").data
            );
        }
    }
}

#[test]
fn ranged_decodes_through_the_session_match_full_decodes() {
    let codec = codec_for(DecoderKind::OptimizedGapArray);
    let fields: Vec<(String, Compressed)> = [("a", 21u64), ("b", 22)]
        .iter()
        .map(|&(name, seed)| {
            let field = generate(&dataset_by_name("GAMESS").unwrap(), 18_000, seed);
            (
                name.to_string(),
                codec.compress_archive(&field).expect("non-empty field"),
            )
        })
        .collect();
    let refs: Vec<(&str, &Compressed)> = fields.iter().map(|(n, c)| (n.as_str(), c)).collect();
    let bytes = huffdec::container::snapshot_to_bytes(&refs).expect("snapshot serializes");
    let handle = codec.open_snapshot_bytes(&bytes).expect("snapshot opens");

    let field = handle.field(0).expect("field 0");
    let full = codec.decode_field_codes(field).expect("full decode");
    assert!(!field.prepared_ready());
    for (start, len) in [(0u64, 64u64), (5_000, 1_000), (17_900, 100)] {
        let r = codec.decompress_range(field, start, len).expect("range");
        assert_eq!(
            r.symbols.as_slice(),
            &full.symbols[start as usize..(start + len) as usize],
            "range [{}, {}+{}) diverged",
            start,
            start,
            len
        );
        assert!(r.decoded_blocks <= r.total_blocks);
    }
    assert!(field.prepared_ready(), "first range builds the index");

    // Out-of-range requests are typed decode errors through the facade.
    assert!(matches!(
        codec.decompress_range(field, 17_999, 100),
        Err(HfzError::Decode(_))
    ));

    // Batched codes decode through handles matches per-field decodes.
    let both = [handle.field(0).unwrap(), handle.field(1).unwrap()];
    let (results, stats) = codec
        .decode_field_codes_batch(&[both[0], both[1]])
        .expect("batch decodes");
    assert_eq!(stats.fields, 2);
    for (field, result) in both.iter().zip(&results) {
        assert_eq!(
            result.symbols,
            codec.decode_field_codes(field).expect("decodes").symbols
        );
    }
}
