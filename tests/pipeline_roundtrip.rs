//! Cross-crate integration tests: the full compression pipeline over every synthetic
//! dataset and every decoder must honour the error bound and reconstruct identically.

use huffdec::core_decoders::DecoderKind;
use huffdec::datasets::{all_datasets, generate};
use huffdec::gpu_sim::{Gpu, GpuConfig};
use huffdec::sz::{compress, decompress, verify_error_bound, ErrorBound, SzConfig};

fn gpu() -> Gpu {
    Gpu::with_host_threads(GpuConfig::test_tiny(), 4)
}

#[test]
fn every_dataset_roundtrips_within_the_error_bound() {
    let gpu = gpu();
    for spec in all_datasets() {
        let field = generate(&spec, 40_000, 11);
        let config = SzConfig::paper_default(DecoderKind::OptimizedGapArray);
        let compressed = compress(&field, &config);
        let decompressed = decompress(&gpu, &compressed).expect("payload matches decoder");
        let eb_abs = 1e-3 * field.range_span() as f64;
        assert!(
            verify_error_bound(&field.data, &decompressed.data, eb_abs).is_none(),
            "{}: error bound violated",
            spec.name
        );
        assert!(
            compressed.overall_compression_ratio() > 1.0,
            "{}",
            spec.name
        );
    }
}

#[test]
fn all_decoders_produce_identical_reconstructions() {
    let gpu = gpu();
    let spec = huffdec::datasets::dataset_by_name("Hurricane").unwrap();
    let field = generate(&spec, 60_000, 5);
    let mut reference: Option<Vec<f32>> = None;
    for decoder in DecoderKind::all() {
        let config = SzConfig::paper_default(decoder);
        let compressed = compress(&field, &config);
        let decompressed = decompress(&gpu, &compressed).expect("payload matches decoder");
        match &reference {
            None => reference = Some(decompressed.data),
            Some(r) => assert_eq!(
                &decompressed.data, r,
                "{:?} reconstruction differs",
                decoder
            ),
        }
    }
}

#[test]
fn tighter_bounds_give_better_fidelity_and_lower_ratio() {
    let gpu = gpu();
    let spec = huffdec::datasets::dataset_by_name("Nyx").unwrap();
    let field = generate(&spec, 50_000, 13);
    let mut last_psnr = f64::NEG_INFINITY;
    let mut last_cr = f64::INFINITY;
    for eb in [1e-2, 1e-3, 1e-4] {
        let config = SzConfig {
            error_bound: ErrorBound::Relative(eb),
            alphabet_size: 1024,
            decoder: DecoderKind::OptimizedSelfSync,
        };
        let compressed = compress(&field, &config);
        let decompressed = decompress(&gpu, &compressed).expect("payload matches decoder");
        let psnr = huffdec::sz::psnr(&field.data, &decompressed.data);
        assert!(
            psnr > last_psnr,
            "PSNR should improve as the bound tightens"
        );
        assert!(compressed.huffman_compression_ratio() < last_cr);
        last_psnr = psnr;
        last_cr = compressed.huffman_compression_ratio();
    }
}

#[test]
fn compression_ratio_lands_near_the_paper_value_at_1e3() {
    // The synthetic generators are calibrated so the Huffman compression ratio at the
    // paper's error bound falls within a generous band of the paper's Table IV value.
    for spec in all_datasets() {
        let field = generate(&spec, 150_000, 0x5EED_CAFE);
        let config = SzConfig::paper_default(DecoderKind::CuszBaseline);
        let compressed = compress(&field, &config);
        let cr = compressed.huffman_compression_ratio();
        let paper = spec.paper_cr_1e3;
        assert!(
            cr > 0.55 * paper && cr < 1.45 * paper,
            "{}: calibrated CR {:.2} too far from paper {:.2}",
            spec.name,
            cr,
            paper
        );
    }
}
